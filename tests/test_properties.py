"""Deeper property-based tests: stateful ordering-buffer behaviour,
CPU-lane invariants, and workload presets."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.consensus.replica import CpuModel
from repro.core.ordering import OrderingBuffer
from repro.net.simulator import Simulation
from repro.workload.ycsb import YcsbWorkload

CLUSTERS = (1, 2, 3)


class OrderingBufferMachine(RuleBasedStateMachine):
    """Feed shares in arbitrary order; rounds must release strictly in
    order with one share per cluster, each exactly once."""

    def __init__(self):
        super().__init__()
        self.released = []
        self.buffer = OrderingBuffer(
            CLUSTERS,
            lambda round_id, ordered: self.released.append(
                (round_id, tuple(c for c, _r, _cert in ordered))),
        )
        self.fed = set()

    @rule(round_id=st.integers(min_value=1, max_value=12),
          cluster=st.sampled_from(CLUSTERS))
    def feed(self, round_id, cluster):
        already_executed = round_id < self.buffer.next_round
        key = (round_id, cluster)
        duplicate = key in self.fed
        fresh = self.buffer.add_share(round_id, cluster,
                                      f"req-{round_id}-{cluster}", "cert")
        assert fresh == (not duplicate and not already_executed)
        self.fed.add(key)

    @invariant()
    def rounds_release_in_order(self):
        round_ids = [r for r, _ in self.released]
        assert round_ids == list(range(1, len(round_ids) + 1))

    @invariant()
    def each_round_has_all_clusters_in_order(self):
        for _round_id, clusters in self.released:
            assert clusters == CLUSTERS

    @invariant()
    def released_rounds_were_fully_fed(self):
        for round_id, _ in self.released:
            for cluster in CLUSTERS:
                assert (round_id, cluster) in self.fed


TestOrderingBufferStateful = OrderingBufferMachine.TestCase


class TestCpuModelProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False), max_size=40),
           st.integers(min_value=1, max_value=8))
    def test_completions_never_decrease_total_work(self, costs, cores):
        """Sum of booked work is conserved: the last completion time is
        at least total_work / cores (no work disappears)."""
        sim = Simulation()
        cpu = CpuModel(sim, cores=cores)
        completions = [cpu.acquire(c) for c in costs]
        if not costs:
            return
        assert max(completions) >= sum(costs) / cores - 1e-9

    @given(st.lists(st.floats(min_value=0.001, max_value=1.0,
                              allow_nan=False), min_size=1, max_size=40))
    def test_single_core_serializes_exactly(self, costs):
        sim = Simulation()
        cpu = CpuModel(sim, cores=1)
        completions = [cpu.acquire(c) for c in costs]
        assert completions[-1] >= sum(costs) - 1e-9
        assert completions == sorted(completions)


class TestWorkloadPresets:
    def test_paper_workload_write_only(self):
        wl = YcsbWorkload.paper_workload(record_count=100, seed=1)
        assert all(wl.next_txn().op == "update" for _ in range(50))

    def test_workload_c_read_only(self):
        wl = YcsbWorkload.workload_c(record_count=100, seed=1)
        assert all(wl.next_txn().op == "read" for _ in range(50))

    def test_workload_a_balanced(self):
        wl = YcsbWorkload.workload_a(record_count=100, seed=1)
        ops = [wl.next_txn().op for _ in range(400)]
        writes = sum(1 for op in ops if op == "update")
        assert 0.35 < writes / len(ops) < 0.65

    def test_workload_b_read_mostly(self):
        wl = YcsbWorkload.workload_b(record_count=100, seed=1)
        ops = [wl.next_txn().op for _ in range(400)]
        reads = sum(1 for op in ops if op == "read")
        assert reads / len(ops) > 0.85

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20)
    def test_write_fraction_respected(self, fraction):
        wl = YcsbWorkload(record_count=50, write_fraction=fraction,
                          rng=random.Random(3))
        ops = [wl.next_txn().op for _ in range(300)]
        writes = sum(1 for op in ops if op == "update") / len(ops)
        assert abs(writes - fraction) < 0.15
