"""Tests for heterogeneous cluster sizes (paper §2.5: GeoBFT "can
easily be extended to also work with clusters of varying size")."""

import pytest

from repro.bench.deployment import Deployment, ExperimentConfig
from repro.bench.scenarios import apply_scenario
from repro.errors import ConfigurationError
from repro.types import replica_id


def hetero_config(protocol="geobft", sizes=(4, 7), **overrides):
    defaults = dict(
        protocol=protocol,
        num_clusters=len(sizes),
        replicas_per_cluster=4,
        cluster_sizes=list(sizes),
        batch_size=4,
        clients_per_cluster=1,
        client_outstanding=2,
        duration=2.5,
        warmup=0.5,
        record_count=300,
        seed=61,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestConfiguration:
    def test_sizes_must_match_cluster_count(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_clusters=3, cluster_sizes=[4, 4])

    def test_minimum_size_enforced_per_cluster(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_clusters=2, cluster_sizes=[4, 3])

    def test_size_of_cluster(self):
        config = hetero_config(sizes=(4, 7, 10), duration=1.0, warmup=0.1)
        assert config.size_of_cluster(1) == 4
        assert config.size_of_cluster(2) == 7
        assert config.size_of_cluster(3) == 10


class TestGeoBftHeterogeneous:
    def test_mixed_cluster_sizes_reach_consensus(self):
        deployment = Deployment(hetero_config(sizes=(4, 7)))
        result = deployment.run()
        assert result.safety_ok
        assert result.throughput_txn_s > 0
        assert len(deployment.cluster_members[1]) == 4
        assert len(deployment.cluster_members[2]) == 7
        for replica in deployment.replicas.values():
            assert replica.executed_rounds > 2

    def test_sharing_respects_per_cluster_f(self):
        """f + 1 targets are computed from the *receiving* cluster's
        size: 2 messages into the n=4 cluster, 3 into the n=7 one."""
        deployment = Deployment(hetero_config(sizes=(4, 7)))
        from repro.consensus.messages import GlobalShare
        into = {1: set(), 2: set()}

        def observer(src, dst, msg, size, local):
            if (isinstance(msg, GlobalShare) and not local
                    and msg.round_id == 3):
                into[dst.cluster].add(dst)

        deployment.network.add_observer(observer)
        deployment.run()
        assert len(into[1]) == 2  # f(4) + 1
        assert len(into[2]) == 3  # f(7) + 1

    def test_f_backups_scenario_uses_per_cluster_f(self):
        deployment = Deployment(hetero_config(sizes=(4, 7)))
        victims = apply_scenario(deployment, "f_backups")
        by_cluster = {}
        for victim in victims:
            by_cluster.setdefault(victim.cluster, []).append(victim)
        assert len(by_cluster[1]) == 1  # f of n=4
        assert len(by_cluster[2]) == 2  # f of n=7

    def test_survives_per_cluster_worst_case(self):
        deployment = Deployment(hetero_config(sizes=(4, 7), duration=4.0))
        apply_scenario(deployment, "f_backups")
        result = deployment.run()
        assert result.safety_ok
        assert result.throughput_txn_s > 0


class TestStewardHeterogeneous:
    def test_mixed_sizes_work(self):
        deployment = Deployment(hetero_config(
            protocol="steward", sizes=(4, 7), steward_crypto_factor=2.0))
        result = deployment.run()
        assert result.safety_ok
        assert result.throughput_txn_s > 0


class TestClientQuorums:
    def test_reply_quorum_tracks_cluster_size(self):
        deployment = Deployment(hetero_config(sizes=(4, 7)))
        small = [c for c in deployment.clients if c.node_id.cluster == 1][0]
        large = [c for c in deployment.clients if c.node_id.cluster == 2][0]
        assert small._reply_quorum == 2  # f(4) + 1
        assert large._reply_quorum == 3  # f(7) + 1
