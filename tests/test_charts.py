"""Tests for the ASCII chart renderer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.bench.charts import ascii_chart, bar_chart


class TestAsciiChart:
    def test_contains_title_axis_and_legend(self):
        text = ascii_chart(
            "Figure X", "z", [1, 2, 3],
            {"geobft": [10.0, 20.0, 30.0], "pbft": [30.0, 20.0, 10.0]},
        )
        assert "Figure X" in text
        assert "(z)" in text
        assert "o geobft" in text
        assert "x pbft" in text

    def test_max_value_labelled(self):
        text = ascii_chart("T", "x", [1, 2], {"s": [5.0, 150_000.0]})
        assert "150k" in text

    def test_no_data(self):
        assert "(no data)" in ascii_chart("T", "x", [], {})
        assert "(no data)" in ascii_chart("T", "x", [1], {})

    def test_glyphs_present_per_series(self):
        text = ascii_chart("T", "x", [1, 2],
                           {"a": [1.0, 2.0], "b": [2.0, 1.0],
                            "c": [1.5, 1.5]})
        for glyph in "ox+":
            assert glyph in text

    def test_zero_series_rendered(self):
        text = ascii_chart("T", "x", [1, 2, 3], {"flat": [0.0, 0.0, 0.0]})
        assert "flat" in text

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=12))
    def test_never_crashes_and_fits_height(self, values):
        text = ascii_chart("T", "x", list(range(len(values))),
                           {"s": values}, height=8, width=30)
        # title + 8 rows + axis + x labels + legend
        assert len(text.splitlines()) == 12

    def test_single_point(self):
        text = ascii_chart("T", "x", [1], {"s": [42.0]})
        assert "42" in text


class TestBarChart:
    def test_bars_scale_to_max(self):
        text = bar_chart("T", ["a", "b"], [50.0, 100.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_labels_and_values_shown(self):
        text = bar_chart("Tput", ["geobft", "pbft"], [120_000.0, 30_000.0])
        assert "geobft" in text and "pbft" in text
        assert "120k" in text and "30k" in text

    def test_empty(self):
        assert "(no data)" in bar_chart("T", [], [])

    def test_zero_values(self):
        text = bar_chart("T", ["x"], [0.0])
        assert "x" in text
