"""Smoke tests: every example script runs to completion and prints its
key results.  Examples are part of the public surface — they must not
rot."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 600.0) -> str:
    script = EXAMPLES / name
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "GeoBFT quickstart" in out
        assert "prefix-consistent" in out and "True" in out
        assert "safety=ok" in out

    def test_failure_resilience(self):
        out = run_example("failure_resilience.py")
        assert "Safety audit (Theorem 2.8): PASS" in out
        assert "Oregon's primary is now" in out
        # The Byzantine primary was deposed.
        assert "view=0" not in out

    def test_payment_network(self):
        out = run_example("payment_network.py")
        assert "safety audit        : PASS" in out
        assert "(expected 1)" in out
        assert "digests across" in out

    def test_geo_scale_comparison(self):
        out = run_example("geo_scale_comparison.py")
        assert "GeoBFT vs PBFT at 4 regions" in out
        assert "geobft" in out

    def test_replica_recovery(self):
        out = run_example("replica_recovery.py")
        assert "recovered: audited and adopted" in out
        assert "state digest matches peer: True" in out
        assert "tampered source rejected as expected" in out

    def test_throughput_anatomy(self):
        out = run_example("throughput_anatomy.py")
        assert "busiest WAN sender region : oregon" in out
        assert "fewer WAN" in out

    def test_chaos_timelines(self):
        out = run_example("chaos_timelines.py")
        assert "wan-partition            off" in out
        assert "safety:   ok" in out
        assert "liveness: ok" in out
        assert "excluded from the honest set: r2.1" in out
