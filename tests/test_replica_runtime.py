"""Tests for the replica runtime: CPU model, transport helpers,
execution lane."""

import pytest

from repro.consensus.replica import BaseReplica, CpuModel
from repro.crypto.costs import CryptoCostModel
from repro.crypto.signatures import KeyRegistry
from repro.ledger.block import Transaction
from repro.net.network import Network
from repro.net.simulator import Simulation
from repro.net.topology import Topology
from repro.types import replica_id


class EchoReplica(BaseReplica):
    """Records handled messages."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.handled = []

    def handle(self, message, sender):
        self.handled.append((message, sender, self.sim.now))


class Sized:
    def __init__(self, size=100):
        self._size = size

    def size_bytes(self):
        return self._size


@pytest.fixture
def rig():
    sim = Simulation(seed=1)
    topo = Topology.uniform(["r1"], rtt_ms=2.0)
    net = Network(sim, topo)
    registry = KeyRegistry()
    a = EchoReplica(replica_id(1, 1), "r1", sim, net, registry,
                    record_count=100)
    b = EchoReplica(replica_id(1, 2), "r1", sim, net, registry,
                    record_count=100)
    return sim, net, a, b


class TestCpuModel:
    def test_single_core_serializes(self):
        sim = Simulation()
        cpu = CpuModel(sim, cores=1)
        assert cpu.acquire(0.5) == pytest.approx(0.5)
        assert cpu.acquire(0.5) == pytest.approx(1.0)

    def test_multiple_cores_parallelize(self):
        sim = Simulation()
        cpu = CpuModel(sim, cores=2)
        assert cpu.acquire(0.5) == pytest.approx(0.5)
        assert cpu.acquire(0.5) == pytest.approx(0.5)
        assert cpu.acquire(0.5) == pytest.approx(1.0)

    def test_idle_cores_start_at_now(self):
        sim = Simulation()
        cpu = CpuModel(sim, cores=1)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert cpu.acquire(0.1) == pytest.approx(2.1)

    def test_zero_cores_clamped_to_one(self):
        sim = Simulation()
        cpu = CpuModel(sim, cores=0)
        assert cpu.acquire(1.0) == pytest.approx(1.0)

    def test_utilization_horizon(self):
        sim = Simulation()
        cpu = CpuModel(sim, cores=2)
        cpu.acquire(3.0)
        assert cpu.utilization_horizon() == pytest.approx(3.0)


class TestTransport:
    def test_message_cost_delays_handling(self, rig):
        sim, net, a, b = rig
        costs = b.costs
        net.send(a.node_id, b.node_id, Sized())
        sim.run()
        assert len(b.handled) == 1
        _msg, _sender, at = b.handled[0]
        expected = 0.001 + costs.message_overhead + costs.mac_verify
        assert at == pytest.approx(expected, rel=0.01)

    def test_crashed_replica_does_not_handle(self, rig):
        sim, net, a, b = rig
        net.send(a.node_id, b.node_id, Sized())
        net.failures.crash(b.node_id)
        sim.run()
        assert b.handled == []

    def test_crash_after_delivery_before_dispatch(self, rig):
        """A message already past the network is still dropped if the
        replica crashes before its CPU picks it up."""
        sim, net, a, b = rig
        net.send(a.node_id, b.node_id, Sized())
        # Crash at 1.001 ms: after delivery (1 ms), before dispatch
        # completes (1 ms + ~5 us would be fine, so use midpoint).
        sim.schedule(0.001001, net.failures.crash, b.node_id)
        sim.run()
        assert b.handled == []

    def test_broadcast_excludes_self_by_default(self, rig):
        sim, net, a, b = rig
        a.broadcast([a.node_id, b.node_id], Sized())
        sim.run()
        assert len(b.handled) == 1
        assert a.handled == []

    def test_sign_charges_cpu(self):
        sim = Simulation(seed=1)
        topo = Topology.uniform(["r1"])
        net = Network(sim, topo)
        registry = KeyRegistry()
        costs = CryptoCostModel(sign=0.5)
        replica = EchoReplica(replica_id(1, 1), "r1", sim, net, registry,
                              costs=costs, cores=1, record_count=10)
        replica.sign("x")
        assert replica._cpu.utilization_horizon() == pytest.approx(0.5)


class TestExecutionLane:
    def test_execution_is_serialized(self, rig):
        _sim, _net, a, _b = rig
        batch = tuple(Transaction(f"t{i}", "update", i, "v")
                      for i in range(10))
        _r1, done1 = a.execute_batch(batch)
        _r2, done2 = a.execute_batch(batch)
        per_batch = a.costs.execute_txn * 10
        assert done1 == pytest.approx(per_batch)
        assert done2 == pytest.approx(2 * per_batch)

    def test_send_at_defers_send(self, rig):
        sim, _net, a, b = rig
        a.send_at(0.5, b.node_id, Sized())
        sim.run(until=0.4)
        assert b.handled == []
        sim.run()
        assert len(b.handled) == 1

    def test_send_at_in_past_sends_immediately(self, rig):
        sim, _net, a, b = rig
        a.send_at(0.0, b.node_id, Sized())
        sim.run()
        assert len(b.handled) == 1

    def test_execute_batch_records_results(self, rig):
        _sim, _net, a, _b = rig
        batch = (Transaction("t1", "update", 1, "x"),
                 Transaction("t2", "read", 1))
        results, _done = a.execute_batch(batch)
        assert results == ["ok", "x"]
        assert a.executor.executed_txns == 2
