"""Tests for the closed-loop quorum client."""

import pytest

from repro.consensus.messages import ClientReply, ClientRequestBatch
from repro.crypto.signatures import KeyRegistry
from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.net.simulator import Simulation
from repro.net.topology import Topology
from repro.types import client_id, replica_id
from repro.workload.client import QuorumClient
from repro.workload.ycsb import YcsbWorkload


class ScriptedReplica:
    """Fake replica that replies to requests per a configurable policy."""

    def __init__(self, node_id, region, network, respond=True,
                 digest=b"results"):
        self.node_id = node_id
        self.region = region
        self.network = network
        self.respond = respond
        self.digest = digest
        self.requests = []
        network.register(self)

    def deliver(self, message, sender):
        if not isinstance(message, ClientRequestBatch):
            return
        self.requests.append(message)
        if not self.respond:
            return
        reply = ClientReply(message.batch_id, self.node_id, 1, 1,
                            self.digest, len(message.batch))
        self.network.send(self.node_id, message.client, reply)


@pytest.fixture
def rig():
    sim = Simulation(seed=1)
    topo = Topology.uniform(["r1"], rtt_ms=2.0)
    net = Network(sim, topo)
    registry = KeyRegistry()
    replicas = [
        ScriptedReplica(replica_id(1, i), "r1", net)
        for i in range(1, 5)
    ]
    return sim, net, registry, replicas


def make_client(sim, net, registry, replicas, **overrides):
    kwargs = dict(
        node_id=client_id(1, 1),
        region="r1",
        sim=sim,
        network=net,
        registry=registry,
        workload=YcsbWorkload(record_count=100, seed=1),
        batch_size=3,
        primary_targets=[replicas[0].node_id],
        fallback_targets=[r.node_id for r in replicas],
        reply_quorum=2,
        outstanding=2,
        retry_timeout=0.5,
    )
    kwargs.update(overrides)
    return QuorumClient(**kwargs)


class TestClosedLoop:
    def test_keeps_outstanding_batches_in_flight(self, rig):
        sim, net, registry, replicas = rig
        client = make_client(sim, net, registry, replicas, outstanding=3)
        client.start()
        sim.run(until=1.0)
        assert client.completed_batches > 0
        assert client.pending_batches == 3

    def test_completion_needs_quorum_of_matching_replies(self, rig):
        sim, net, registry, replicas = rig
        # Only one replica responds: quorum of 2 never reached.
        for replica in replicas[1:]:
            replica.respond = False
        client = make_client(sim, net, registry, replicas,
                             retry_timeout=30.0)
        client.start()
        sim.run(until=1.0)
        assert client.completed_batches == 0

    def test_mismatched_digests_do_not_complete(self, rig):
        sim, net, registry, replicas = rig
        for i, replica in enumerate(replicas):
            replica.digest = bytes([i]) * 4  # all different
        client = make_client(sim, net, registry, replicas,
                             retry_timeout=30.0)
        client.start()
        sim.run(until=1.0)
        assert client.completed_batches == 0

    def test_requests_are_signed(self, rig):
        sim, net, registry, replicas = rig
        client = make_client(sim, net, registry, replicas)
        client.start()
        sim.run(until=0.2)
        request = replicas[0].requests[0]
        assert request.signature is not None
        unsigned = ClientRequestBatch(request.batch_id, request.client,
                                      request.batch, None)
        assert registry.verify(unsigned.payload(), request.signature)

    def test_retry_broadcasts_to_fallback_targets(self, rig):
        sim, net, registry, replicas = rig
        replicas[0].respond = False  # primary silent
        client = make_client(sim, net, registry, replicas, reply_quorum=2)
        client.start()
        sim.run(until=2.0)
        # After the timeout, backups received the retransmission and
        # replied; quorum reached without the primary.
        assert client.completed_batches > 0
        assert all(r.requests for r in replicas[1:])

    def test_max_batches_bounds_submission(self, rig):
        sim, net, registry, replicas = rig
        client = make_client(sim, net, registry, replicas, max_batches=5,
                             outstanding=2)
        client.start()
        sim.run(until=3.0)
        assert client.submitted_batches == 5
        assert client.completed_batches == 5

    def test_start_is_idempotent(self, rig):
        sim, net, registry, replicas = rig
        client = make_client(sim, net, registry, replicas, outstanding=2)
        client.start()
        client.start()
        assert client.pending_batches == 2

    def test_replies_from_impersonators_ignored(self, rig):
        sim, net, registry, replicas = rig
        client = make_client(sim, net, registry, replicas, reply_quorum=2)
        client.start()
        sim.run(until=0.01)
        # replica 4 sends replies claiming to be replica 3.
        batch_id = f"{client.node_id}:0"
        forged = ClientReply(batch_id, replicas[2].node_id, 1, 1, b"x", 3)
        net.send(replicas[3].node_id, client.node_id, forged)
        net.send(replicas[3].node_id, client.node_id, forged)
        sim.run(until=0.02)
        # No completion from forged replies alone with unique digest b"x".
        assert all(
            b"x" not in votes
            for votes in (p.votes for p in client._pending.values())
        ) or client.completed_batches == 0

    def test_validation_of_parameters(self, rig):
        sim, net, registry, replicas = rig
        with pytest.raises(ConfigurationError):
            make_client(sim, net, registry, replicas, batch_size=0)
        with pytest.raises(ConfigurationError):
            make_client(sim, net, registry, replicas, reply_quorum=0)
        with pytest.raises(ConfigurationError):
            make_client(sim, net, registry, replicas, outstanding=0)
