"""Cross-protocol integration tests: determinism, failure scenarios,
and the safety guarantees of Theorem 2.8."""

import pytest

from repro.bench.deployment import PROTOCOLS, Deployment, ExperimentConfig
from repro.bench.scenarios import apply_scenario
from repro.types import replica_id


def config_for(protocol, **overrides):
    defaults = dict(
        protocol=protocol,
        num_clusters=2,
        replicas_per_cluster=4,
        batch_size=4,
        clients_per_cluster=1,
        client_outstanding=2,
        duration=3.0,
        warmup=0.5,
        record_count=300,
        seed=77,
        steward_crypto_factor=2.0,
        zyzzyva_spec_timeout=0.4,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def run_with_scenario(protocol, scenario, fail_at=0.0, **overrides):
    deployment = Deployment(config_for(protocol, **overrides))
    apply_scenario(deployment, scenario, fail_at=fail_at)
    result = deployment.run()
    return deployment, result


class TestDeterminism:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_same_seed_same_results(self, protocol):
        """The whole stack is deterministic: a rerun with the same
        config is bit-identical in every reported number."""
        a = Deployment(config_for(protocol)).run()
        b = Deployment(config_for(protocol)).run()
        assert a.throughput_txn_s == b.throughput_txn_s
        assert a.avg_latency_s == b.avg_latency_s
        assert a.completed_txns == b.completed_txns
        assert a.local_messages == b.local_messages
        assert a.global_messages == b.global_messages

    def test_different_seeds_differ(self):
        """Seeds change the workload: the ledgers' contents differ even
        though the protocol timing (message counts) is the same."""
        d1 = Deployment(config_for("geobft", seed=1))
        d1.run()
        d2 = Deployment(config_for("geobft", seed=2))
        d2.run()
        h1 = d1.replicas[replica_id(1, 1)].ledger.head_hash
        h2 = d2.replicas[replica_id(1, 1)].ledger.head_hash
        assert h1 != h2

    def test_ledger_content_identical_across_reruns(self):
        d1 = Deployment(config_for("geobft"))
        d1.run()
        d2 = Deployment(config_for("geobft"))
        d2.run()
        r1 = d1.replicas[replica_id(1, 1)]
        r2 = d2.replicas[replica_id(1, 1)]
        assert r1.ledger.head_hash == r2.ledger.head_hash


class TestSafetyUnderFailures:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_one_backup_failure_preserves_safety(self, protocol):
        deployment, result = run_with_scenario(protocol, "one_backup")
        assert result.safety_ok

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_f_backup_failures_preserve_safety_and_progress(self, protocol):
        deployment, result = run_with_scenario(
            protocol, "f_backups", duration=5.0)
        assert result.safety_ok
        if protocol != "zyzzyva":  # Zyzzyva's collapse is by design
            assert result.throughput_txn_s > 0

    @pytest.mark.parametrize("protocol", ["geobft", "pbft"])
    def test_primary_failure_recovers(self, protocol):
        """Figure 12 (right): both GeoBFT and PBFT recover from a
        primary crash via (remote/local) view changes."""
        deployment, result = run_with_scenario(
            protocol, "primary", fail_at=1.0, duration=12.0, warmup=0.5,
            view_change_timeout=0.8, client_retry_timeout=2.0)
        assert result.safety_ok
        # Progress resumed after the view change: completions exist
        # well after the crash point.
        completions = deployment.metrics._completions
        assert any(t > 6.0 for t, _ in completions)

    def test_geobft_other_clusters_progress_during_oregon_failover(self):
        deployment, result = run_with_scenario(
            "geobft", "primary", fail_at=1.0, duration=12.0,
            view_change_timeout=0.8, client_retry_timeout=2.0)
        cluster2 = [r for n, r in deployment.replicas.items()
                    if n.cluster == 2]
        assert all(r.engine.decided_count > 0 for r in cluster2)
        assert result.safety_ok


class TestNonDivergenceAudit:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_ledger_hash_chains_all_verify(self, protocol):
        deployment, _result = run_with_scenario(protocol, "none")
        for replica in deployment.replicas.values():
            replica.ledger.verify()

    def test_execution_state_identical_across_replicas(self):
        deployment, _result = run_with_scenario("geobft", "none")
        replicas = list(deployment.replicas.values())
        min_height = min(r.ledger.height for r in replicas)
        assert min_height > 0
        # Replay the shortest common prefix into fresh stores: every
        # replica's prefix produces the same state digest.
        from repro.ledger.execution import ExecutionEngine
        from repro.ledger.store import YcsbStore
        digests = set()
        for replica in replicas:
            engine = ExecutionEngine(YcsbStore(300))
            for height in range(min_height):
                engine.execute_batch(replica.ledger.block(height).batch)
            digests.add(engine.state_digest())
        assert len(digests) == 1
