"""Tests for the HotStuff implementation (parallel instances, linear
QCs, 4-phase latency)."""

import pytest

from repro.bench.deployment import Deployment, ExperimentConfig
from repro.types import replica_id


def hs_config(**overrides):
    defaults = dict(
        protocol="hotstuff",
        num_clusters=2,
        replicas_per_cluster=4,
        batch_size=5,
        clients_per_cluster=1,
        client_outstanding=2,
        duration=3.0,
        warmup=0.5,
        record_count=500,
        seed=31,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def run(config):
    deployment = Deployment(config)
    result = deployment.run()
    return deployment, result


class TestNormalOperation:
    def test_progress_and_client_completion(self):
        deployment, result = run(hs_config())
        assert result.throughput_txn_s > 0
        assert all(c.completed_batches > 0 for c in deployment.clients)

    def test_per_instance_sequences_identical_across_replicas(self):
        deployment, _result = run(hs_config())
        assert deployment.check_safety()

    def test_multiple_instances_active(self):
        """Every replica leads its own instance (§3): with clients in
        both regions, several instances decide batches."""
        deployment, _result = run(hs_config())
        instances = set()
        for replica in deployment.replicas.values():
            for block in replica.ledger:
                instances.add(block.cluster_id)  # instance id
        assert len(instances) >= 2

    def test_heights_sequential_within_instance(self):
        deployment, _result = run(hs_config())
        for replica in deployment.replicas.values():
            per_instance = {}
            for block in replica.ledger:
                per_instance.setdefault(block.cluster_id, []).append(
                    block.round_id)
            for heights in per_instance.values():
                assert sorted(heights) == list(range(1, len(heights) + 1))

    def test_four_phase_latency_floor(self):
        """Even locally, a decision takes 7 message delays: the 4-phase
        design's latency the paper calls out (§4.1)."""
        _deployment, result = run(hs_config(num_clusters=1))
        # 1 ms intra-region RTT => at least ~3.5 ms of pure propagation.
        assert result.avg_latency_s > 0.003


class TestFailures:
    def test_crashed_leader_stalls_only_its_instance(self):
        config = hs_config(duration=4.0)
        deployment = Deployment(config)
        victim = replica_id(2, 4)
        deployment.network.failures.crash(victim)
        for client in deployment.clients:
            deployment.sim.schedule(0.0, client.start)
        deployment.sim.run(until=config.duration)
        deployment.metrics.finish(deployment.sim.now)
        # Other instances still decide; overall throughput positive.
        assert deployment.metrics.throughput_txn_s() > 0
        assert deployment.check_safety()

    def test_quorum_still_reachable_with_f_crashes(self):
        config = hs_config(replicas_per_cluster=4, duration=4.0)
        deployment = Deployment(config)
        # Flat group of 8 tolerates F = 2; crash two non-home replicas.
        deployment.network.failures.crash(replica_id(1, 3))
        deployment.network.failures.crash(replica_id(2, 3))
        for client in deployment.clients:
            deployment.sim.schedule(0.0, client.start)
        deployment.sim.run(until=config.duration)
        deployment.metrics.finish(deployment.sim.now)
        assert deployment.metrics.throughput_txn_s() > 0
        assert deployment.check_safety()
