"""Tests for the message tracer."""

from repro.bench.deployment import Deployment
from repro.bench.tracing import MessageTracer, TraceEvent
from repro.consensus.messages import GlobalShare, PrePrepare

from .conftest import small_config


def test_tracer_records_filtered_kinds():
    deployment = Deployment(small_config("geobft", fast_crypto=True))
    tracer = MessageTracer.attach(deployment.network, kinds=(GlobalShare,))
    deployment.run()
    assert tracer.events
    assert all(e.kind == "GlobalShare" for e in tracer.events)
    assert tracer.of_kind("GlobalShare") == tracer.events
    assert tracer.of_kind("PrePrepare") == []


def test_tracer_unfiltered_sees_everything():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=1.0, warmup=0.2))
    tracer = MessageTracer.attach(deployment.network)
    deployment.run()
    kinds = {e.kind for e in tracer.events}
    assert {"PrePrepare", "Prepare", "Commit", "GlobalShare"} <= kinds


def test_tracer_event_times_monotone():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=1.0, warmup=0.2))
    tracer = MessageTracer.attach(deployment.network, kinds=(PrePrepare,))
    deployment.run()
    times = [e.time for e in tracer.events]
    assert times == sorted(times)


def test_tracer_between_clusters():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=1.0, warmup=0.2))
    tracer = MessageTracer.attach(deployment.network, kinds=(GlobalShare,))
    deployment.run()
    cross = tracer.between(1, 2)
    assert cross
    assert all(e.src.cluster == 1 and e.dst.cluster == 2 for e in cross)


def test_tracer_bounded_buffer():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=1.0, warmup=0.2))
    tracer = MessageTracer.attach(deployment.network, max_events=10)
    deployment.run()
    assert len(tracer.events) == 10
    assert tracer.dropped > 0
    assert "dropped" in tracer.summary()


def test_tracer_predicate_filter():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=1.0, warmup=0.2))
    tracer = MessageTracer.attach(
        deployment.network,
        predicate=lambda src, dst, msg: src.cluster != dst.cluster,
    )
    deployment.run()
    assert tracer.events
    assert all(not e.is_local for e in tracer.events)


def test_first_time_of():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=1.0, warmup=0.2))
    tracer = MessageTracer.attach(deployment.network)
    deployment.run()
    first_pp = tracer.first_time_of("PrePrepare")
    first_share = tracer.first_time_of("GlobalShare")
    assert first_pp is not None and first_share is not None
    assert first_pp < first_share  # replication precedes sharing
    assert tracer.first_time_of("NoSuchMessage") is None


def test_trace_event_str():
    from repro.types import replica_id
    event = TraceEvent(1.5, "GlobalShare", replica_id(1, 1),
                       replica_id(2, 1), 6401, False)
    text = str(event)
    assert "GlobalShare" in text and "global" in text


def test_tracer_dropped_accounting_exact():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=1.0, warmup=0.2))
    bounded = MessageTracer.attach(deployment.network, max_events=10)
    unbounded = MessageTracer.attach(deployment.network)
    deployment.run()
    total = len(unbounded.events)
    assert total > 10
    assert bounded.dropped == total - 10
    # keep="first" retains the *earliest* events.
    assert bounded.events == unbounded.events[:10]


def test_tracer_keep_last_is_ring_buffer():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=1.0, warmup=0.2))
    ring = MessageTracer.attach(deployment.network, max_events=10,
                                keep="last")
    unbounded = MessageTracer.attach(deployment.network)
    deployment.run()
    assert len(ring.events) == 10
    assert ring.dropped == len(unbounded.events) - 10
    # The ring retains the *latest* events.
    assert ring.events == unbounded.events[-10:]


def test_tracer_invalid_keep_rejected():
    import pytest
    deployment = Deployment(small_config("geobft", fast_crypto=True))
    with pytest.raises(ValueError):
        MessageTracer(deployment.network, keep="middle")


def test_tracer_warns_through_hub_on_first_drop():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=1.0, warmup=0.2,
                                         instrument=True))
    hub = deployment.instrumentation
    tracer = MessageTracer.attach(deployment.network, max_events=5,
                                  instrumentation=hub)
    deployment.run()
    assert tracer.dropped > 0
    warnings = [w for w in hub.warnings if "MessageTracer" in w]
    assert len(warnings) == 1  # once, not once per dropped event


def test_tracer_between_absent_pair_empty():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=1.0, warmup=0.2))
    tracer = MessageTracer.attach(deployment.network)
    deployment.run()
    assert tracer.between(1, 99) == []
    assert tracer.between(99, 1) == []


def test_tracer_kind_and_predicate_compose():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=1.0, warmup=0.2))
    tracer = MessageTracer.attach(
        deployment.network,
        kinds=(GlobalShare,),
        predicate=lambda src, dst, msg: dst.cluster == 2,
    )
    deployment.run()
    assert tracer.events
    assert all(e.kind == "GlobalShare" and e.dst.cluster == 2
               for e in tracer.events)
