"""Golden deployment digests: the engine overhaul must not move a bit.

The calendar event queue, the zero-delay lane, the multicast fast path,
and the incremental vote counters are all *host-side* optimizations:
they reorder no events and change no simulated timing.  These tests pin
that claim to golden ``deployment_digest`` values captured on the
pre-overhaul engine (plain binary heap, per-destination sends, quorum
re-scans).  The digest covers the full experiment result, the total
event count, and every replica's ledger head — if any optimization
leaks into virtual time, ordering, or execution, the digest moves.

The matrix deliberately crosses all five protocols, two seeds, two
deployment shapes, and one real-crypto (slow) point.  Each case runs a
full small deployment (~1–2 s on a typical host).

The same matrix also pins the **parallel engine**: every case re-runs
with ``workers`` ∈ {1, 2, 4} and must land on the identical golden
digest — workers=1 exercises the :func:`run_experiment` serial
dispatch, the higher counts the per-cluster worker processes with
conservative-lookahead barriers (``repro.bench.parallel``).  On the
2-cluster shapes workers=4 clamps to 2, which is itself part of the
contract.

``benchmarks/bench_scale.py --baseline`` extends the same check to the
paper-scale points via the committed ``BENCH_scale.json``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.deployment import (Deployment, ExperimentConfig,
                                    deployment_digest)
from repro.bench.parallel import parallel_unsupported_reason, run_parallel

# (protocol, seed) -> (digest, events) on the small 2x4 deployment:
# batch_size=50, duration=1.0, warmup=0.25, record_count=2000,
# fast_crypto=True.
SMALL_MATRIX = {
    ("geobft", 1): (
        "7f6bfe45e2e7c6fd78134fdcb6915b08f2b492b7cc8abf983b9604276ca2762c",
        165438),
    ("geobft", 7): (
        "301cedf742bc5f81adef09e410f6c8faf65ef786115b95f64a971c1fa5245c7b",
        165438),
    ("pbft", 1): (
        "8c644315eb76955188f0ee948cbd9e92090bc8abc2e79e0f04175db39f4dcc15",
        195413),
    ("pbft", 7): (
        "c6583cc77b486a2df27da2cd068b18f68bd3c9879734b970d4bf414380457733",
        195413),
    ("zyzzyva", 1): (
        "d0d8ff04f1922db5ecedbc013c57ca058bfae0a2af9a868261a66aa88f1d3528",
        52058),
    ("zyzzyva", 7): (
        "4f8bb4f98a47d9c2ee520a83fc0f34c4748a4934e1cf6ccea6167f9c93c9360f",
        52058),
    ("hotstuff", 1): (
        "5c2d0f5e6bdbb4ad799a7df30dc380d5d2627dfccadaf3292721964b68d1a808",
        56058),
    ("hotstuff", 7): (
        "317ad4095e6ce91c896371945176a4d89c6df662ce8fab02a0d33a25514d180a",
        56058),
    ("steward", 1): (
        "cf396cbe943a5672d8fb7e3ae294b8159244567f0dc0d88b1a06bf5245410ed0",
        5179),
    ("steward", 7): (
        "1301e2e090eafc4fd6d1be8a7680f1a294c14fc2249807c6397c241627d8fdab",
        5179),
}

# Larger GeoBFT shapes (the scale sweep's building blocks) plus one
# real-crypto point that exercises the full signature path.
SHAPE_MATRIX = [
    (dict(protocol="geobft", num_clusters=4, replicas_per_cluster=4,
          batch_size=100, duration=1.0, warmup=0.25, seed=2,
          record_count=10_000, fast_crypto=True),
     "2bee47a3170090aeed01fc5e2ef9ac61eb10e4143121b24b6302edb0653465c3",
     139147),
    (dict(protocol="geobft", num_clusters=4, replicas_per_cluster=8,
          batch_size=100, duration=0.8, warmup=0.2, seed=2,
          record_count=10_000, fast_crypto=True),
     "5f0b39c4a539d034398105fb6229ad212d56f805a5c362a4fd4e0176bc20d52d",
     242569),
    (dict(protocol="geobft", num_clusters=2, replicas_per_cluster=4,
          batch_size=50, duration=0.8, warmup=0.2, seed=3,
          record_count=2_000, fast_crypto=False),
     "8eb12c7294daa55fa64cc2be1211045bf2db7780a603ff2e845f2b82b97b9bfa",
     131878),
]


def _run(**kwargs):
    deployment = Deployment(ExperimentConfig(**kwargs))
    result = deployment.run()
    return deployment, result


@pytest.mark.parametrize("protocol,seed", sorted(SMALL_MATRIX))
def test_small_deployment_digest_is_golden(protocol, seed):
    expected_digest, expected_events = SMALL_MATRIX[(protocol, seed)]
    deployment, result = _run(
        protocol=protocol, num_clusters=2, replicas_per_cluster=4,
        batch_size=50, duration=1.0, warmup=0.25, seed=seed,
        record_count=2_000, fast_crypto=True,
    )
    assert result.safety_ok
    assert deployment.sim.events_processed == expected_events
    assert deployment_digest(deployment, result) == expected_digest


@pytest.mark.parametrize("config,expected_digest,expected_events",
                         SHAPE_MATRIX,
                         ids=["geobft-4x4", "geobft-4x8",
                              "geobft-2x4-realcrypto"])
def test_shape_deployment_digest_is_golden(config, expected_digest,
                                           expected_events):
    deployment, result = _run(**config)
    assert result.safety_ok
    assert deployment_digest(deployment, result) == expected_digest
    assert deployment.sim.events_processed == expected_events


# ---------------------------------------------------------------------------
# The parallel engine against the same golden values
# ---------------------------------------------------------------------------
#: workers=1 exercises run_experiment's serial dispatch; 2 and 4 the
#: parallel engine proper (clamped to the cluster count where needed).
WORKER_COUNTS = (1, 2, 4)


def _parallel_case(config: ExperimentConfig, workers: int,
                   expected_digest: str, expected_events: int) -> None:
    config = dataclasses.replace(config, workers=workers)
    if parallel_unsupported_reason(config) is not None:
        # workers=1: run_experiment's dispatch must use the serial
        # engine and still hit the golden digest (the fallback-result
        # equivalence itself is covered in test_parallel_engine.py).
        deployment = Deployment(config)
        result = deployment.run()
        assert deployment.sim.events_processed == expected_events
        assert deployment_digest(deployment, result) == expected_digest
        return
    run = run_parallel(config)
    assert run.result.safety_ok
    assert run.events_processed == expected_events
    assert run.digest == expected_digest


@pytest.mark.parametrize("workers", WORKER_COUNTS,
                         ids=lambda w: f"w{w}")
@pytest.mark.parametrize("protocol,seed", sorted(SMALL_MATRIX))
def test_small_matrix_parallel_digest_parity(protocol, seed, workers):
    expected_digest, expected_events = SMALL_MATRIX[(protocol, seed)]
    config = ExperimentConfig(
        protocol=protocol, num_clusters=2, replicas_per_cluster=4,
        batch_size=50, duration=1.0, warmup=0.25, seed=seed,
        record_count=2_000, fast_crypto=True,
    )
    _parallel_case(config, workers, expected_digest, expected_events)


@pytest.mark.parametrize("workers", WORKER_COUNTS,
                         ids=lambda w: f"w{w}")
@pytest.mark.parametrize("config,expected_digest,expected_events",
                         SHAPE_MATRIX,
                         ids=["geobft-4x4", "geobft-4x8",
                              "geobft-2x4-realcrypto"])
def test_shape_matrix_parallel_digest_parity(config, expected_digest,
                                             expected_events, workers):
    _parallel_case(ExperimentConfig(**config), workers,
                   expected_digest, expected_events)
