"""Tests for the Steward implementation (hierarchical, primary cluster)."""

import pytest

from repro.bench.deployment import Deployment, ExperimentConfig
from repro.types import replica_id


def steward_config(**overrides):
    defaults = dict(
        protocol="steward",
        num_clusters=2,
        replicas_per_cluster=4,
        batch_size=5,
        clients_per_cluster=1,
        client_outstanding=2,
        duration=3.0,
        warmup=0.5,
        record_count=500,
        seed=41,
        steward_crypto_factor=2.0,  # keep unit tests fast
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def run(config):
    deployment = Deployment(config)
    result = deployment.run()
    return deployment, result


class TestGlobalOrdering:
    def test_all_replicas_execute_identical_global_sequence(self):
        deployment, _result = run(steward_config())
        assert deployment.check_safety()
        heights = [r.ledger.height for r in deployment.replicas.values()]
        assert min(heights) > 3

    def test_remote_clients_complete_via_primary_cluster(self):
        deployment, _result = run(steward_config())
        remote_clients = [c for c in deployment.clients
                          if c.node_id.cluster != 1]
        assert all(c.completed_batches > 0 for c in remote_clients)

    def test_remote_requests_pay_wan_round_trips(self):
        """A request from a non-primary site crosses to Oregon and the
        order crosses back — its latency includes WAN hops."""
        deployment, _result = run(steward_config())
        # Oregon <-> Iowa RTT is 38 ms; remote batches can't beat it.
        remote = [c for c in deployment.clients
                  if c.node_id.cluster == 2][0]
        assert remote.completed_batches > 0
        # Inspect metrics: average over all clients mixes fast local
        # and slow remote; remote floor asserted via message flow below.
        counts = deployment.metrics.message_counts()
        assert counts.get("StewardForward", {}).get("global", 0) > 0
        assert counts.get("StewardGlobalOrder", {}).get("global", 0) > 0

    def test_blocks_ordered_by_global_sequence(self):
        deployment, _result = run(steward_config())
        for replica in deployment.replicas.values():
            rounds = [block.round_id for block in replica.ledger]
            assert rounds == sorted(rounds)

    def test_three_clusters(self):
        deployment, _result = run(steward_config(num_clusters=3))
        assert deployment.check_safety()
        assert all(c.completed_batches > 0 for c in deployment.clients)


class TestCentralization:
    def test_primary_cluster_handles_all_global_ordering(self):
        """Every executed block carries the primary cluster's
        certificate — the centralized design of §1.1."""
        deployment, _result = run(steward_config())
        replica = deployment.replicas[replica_id(2, 2)]
        for height in range(replica.ledger.height):
            cert = replica.ledger.certificate(height)
            assert cert.cluster_id == 1

    def test_crypto_factor_slows_steward_down(self):
        _d1, fast = run(steward_config(steward_crypto_factor=1.0))
        _d2, slow = run(steward_config(steward_crypto_factor=400.0))
        assert slow.throughput_txn_s < fast.throughput_txn_s


class TestFailures:
    def test_backup_crashes_tolerated(self):
        config = steward_config(duration=4.0)
        deployment = Deployment(config)
        deployment.network.failures.crash(replica_id(1, 4))
        deployment.network.failures.crash(replica_id(2, 4))
        for client in deployment.clients:
            deployment.sim.schedule(0.0, client.start)
        deployment.sim.run(until=config.duration)
        deployment.metrics.finish(deployment.sim.now)
        assert deployment.metrics.throughput_txn_s() > 0
        assert deployment.check_safety()
