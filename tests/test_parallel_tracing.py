"""Parallel-native tracing: worker hubs merged into one serial-equal trace.

The parallel engine no longer falls back to serial for instrumented
runs; each worker records into its own hub and the orchestrator folds
them at run end.  These tests pin the contract:

* **Trace parity** — golden-matrix configs run at ``workers`` ∈
  {1, 2, 4} produce the identical sorted ``(time, phase, node, round)``
  event set, identical spans/share latency, and the byte-identical
  golden ``deployment_digest``.
* **Chrome-trace parity** — the merged hub's trace_event export equals
  the serial hub's, modulo the extra "engine" telemetry track.
* **Chaos dedup** — orchestration events replicated into every worker
  (fault toggles, chaos counters) appear exactly once after the merge.
* **Engine telemetry** — every parallel run carries an
  :class:`EngineReport`; instrumented runs also render it as a
  dedicated trace track and JSONL records.
* **Per-worker profiling** — ``REPRO_PROFILE=1`` dumps one pstats file
  per worker, suffixed ``-w<rank>``.

The known, documented divergence: ``sim.pending_events`` samples are
per-worker queue depths in parallel mode, so sample *streams* are not
asserted equal — everything else is.
"""

from __future__ import annotations

import dataclasses
import json
import pstats

import pytest

from repro.bench.deployment import (Deployment, ExperimentConfig,
                                    deployment_digest)
from repro.bench.instrumentation import ENGINE_TRACK_PID
from repro.bench.parallel import parallel_unsupported_reason, run_parallel
from repro.bench.tracing import load_trace_jsonl
from repro.net.chaos import FaultTimeline, PartitionFault, TamperFault

from .test_scale_determinism import SHAPE_MATRIX, SMALL_MATRIX

#: workers=1 exercises the serial dispatch (the gate still routes it to
#: the serial engine); 2 and 4 the parallel engine proper.
WORKER_COUNTS = (1, 2, 4)

#: Golden-matrix points for the parity sweep: the 4-cluster shape (so
#: workers=4 is four real workers, not a clamp) and one small 2x4 case.
PARITY_CASES = [
    ("geobft-4x4",
     dict(SHAPE_MATRIX[0][0]),
     SHAPE_MATRIX[0][1]),
    ("pbft-2x4",
     dict(protocol="pbft", num_clusters=2, replicas_per_cluster=4,
          batch_size=50, duration=1.0, warmup=0.25, seed=1,
          record_count=2_000, fast_crypto=True),
     SMALL_MATRIX[("pbft", 1)][0]),
]

SMALL = dict(protocol="geobft", num_clusters=2, replicas_per_cluster=4,
             batch_size=50, duration=1.0, warmup=0.25, seed=1,
             record_count=2_000, fast_crypto=True)


def small_config(**overrides) -> ExperimentConfig:
    return ExperimentConfig(**{**SMALL, **overrides})


def _event_set(hub):
    return sorted((e.time, e.phase, str(e.node), e.cluster, e.round_id)
                  for e in hub.events)


def _spans(hub):
    return {key: hub.round_span(*key) for key in hub.rounds()}


def _assert_share_parity(hub, reference):
    # Counts and marks are exact; means can differ in the last ulp
    # because the two hubs accumulate the identical values in different
    # orders (dict insertion order is merge-dependent).
    ours, theirs = hub.share_latency(), reference.share_latency()
    assert set(ours) == set(theirs)
    for key, histogram in theirs.items():
        assert ours[key].count == histogram.count
        assert ours[key].mean() == pytest.approx(histogram.mean())


def _instrumented(config: ExperimentConfig):
    """Run on whichever engine the gate picks; return (hub, digest)."""
    if parallel_unsupported_reason(config) is not None:
        deployment = Deployment(config)
        result = deployment.run()
        return (deployment.instrumentation,
                deployment_digest(deployment, result))
    run = run_parallel(config)
    return run.instrumentation, run.digest


# ---------------------------------------------------------------------------
# Serial-vs-parallel trace parity on the golden matrix
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name,case,golden",
                         PARITY_CASES, ids=[c[0] for c in PARITY_CASES])
def test_trace_parity_across_worker_counts(name, case, golden):
    serial = Deployment(ExperimentConfig(**case, instrument=True))
    result = serial.run()
    assert deployment_digest(serial, result) == golden
    reference_hub = serial.instrumentation
    reference = _event_set(reference_hub)
    for workers in WORKER_COUNTS:
        hub, digest = _instrumented(
            ExperimentConfig(**case, instrument=True, workers=workers))
        assert digest == golden, f"workers={workers}"
        assert len(hub.events) == len(reference_hub.events)
        assert _event_set(hub) == reference
        assert _spans(hub) == _spans(reference_hub)
        _assert_share_parity(hub, reference_hub)
        assert hub.counters == reference_hub.counters
        assert hub.committed_rounds() == reference_hub.committed_rounds()


def test_merged_event_order_matches_serial_emission_order():
    # Stronger than set equality: the tie-key sort reconstructs the
    # serial engine's exact emission sequence.
    serial = Deployment(small_config(instrument=True))
    serial.run()
    run = run_parallel(small_config(instrument=True, workers=2))
    key = lambda e: (e.time, e.phase, str(e.node), e.cluster, e.round_id)
    assert ([key(e) for e in run.instrumentation.events]
            == [key(e) for e in serial.instrumentation.events])


def test_phase_durations_survive_the_merge():
    serial = Deployment(small_config(instrument=True))
    serial.run()
    run = run_parallel(small_config(instrument=True, workers=2))
    ours = run.instrumentation.phase_durations()
    theirs = serial.instrumentation.phase_durations()
    assert set(ours) == set(theirs)
    for name, histogram in theirs.items():
        assert ours[name].count == histogram.count
        assert ours[name].mean() == pytest.approx(histogram.mean())


# ---------------------------------------------------------------------------
# Chrome-trace parity (modulo the engine track) and the engine track
# ---------------------------------------------------------------------------
def _non_engine_rows(document):
    return sorted(json.dumps(event, sort_keys=True)
                  for event in document["traceEvents"]
                  if event.get("pid") != ENGINE_TRACK_PID)


def test_chrome_trace_span_set_equals_serial():
    serial = Deployment(small_config(instrument=True))
    serial.run()
    run = run_parallel(small_config(instrument=True, workers=2))
    serial_doc = serial.instrumentation.chrome_trace()
    merged_doc = run.instrumentation.chrome_trace()
    assert _non_engine_rows(merged_doc) == _non_engine_rows(serial_doc)


def test_chrome_trace_renders_engine_track():
    run = run_parallel(small_config(instrument=True, workers=2))
    document = run.instrumentation.chrome_trace()
    engine = [e for e in document["traceEvents"]
              if e.get("pid") == ENGINE_TRACK_PID]
    names = [e for e in engine if e["ph"] == "M"
             and e["name"] == "process_name"]
    assert names and names[0]["args"]["name"] == "engine"
    threads = [e for e in engine if e["ph"] == "M"
               and e["name"] == "thread_name"]
    assert {e["tid"] for e in threads} == {0, 1}
    windows = [e for e in engine if e["ph"] == "X"]
    assert windows and {e["cat"] for e in windows} == {"engine"}
    for span in windows:
        assert span["dur"] >= 0
        assert {"busy_s", "wait_s", "events", "exports",
                "export_events", "imports"} <= set(span["args"])
    # The serial hub has no engine data and renders no such track.
    serial = Deployment(small_config(instrument=True))
    serial.run()
    serial_doc = serial.instrumentation.chrome_trace()
    assert not any(e.get("pid") == ENGINE_TRACK_PID
                   for e in serial_doc["traceEvents"])


# ---------------------------------------------------------------------------
# Chaos events are orchestration-shared: merged exactly once
# ---------------------------------------------------------------------------
def test_chaos_events_not_duplicated_across_workers():
    timeline = FaultTimeline([
        PartitionFault(["cluster:1"], ["cluster:2"],
                       at=0.3, until=0.55, name="split"),
        TamperFault("replica:1.2", at=0.2, name="tamper"),
    ], name="tracing-chaos")
    config = small_config(instrument=True)
    serial = Deployment(config)
    FaultTimeline.from_dict(timeline.to_dict()).install(serial)
    result = serial.run()
    run = run_parallel(dataclasses.replace(config, workers=2),
                       timeline=timeline)
    assert run.digest == deployment_digest(serial, result)
    hub, serial_hub = run.instrumentation, serial.instrumentation

    def chaos_events(h):
        return sorted((e.time, e.phase, str(e.node)) for e in h.events
                      if e.phase in ("fault_on", "fault_off"))

    serial_chaos = chaos_events(serial_hub)
    assert serial_chaos  # the timeline actually toggled
    assert chaos_events(hub) == serial_chaos
    chaos_counters = {k: v for k, v in serial_hub.counters.items()
                      if k.startswith("chaos.")}
    assert chaos_counters
    assert {k: v for k, v in hub.counters.items()
            if k.startswith("chaos.")} == chaos_counters


# ---------------------------------------------------------------------------
# Engine telemetry: report, JSONL round trip, per-worker profiles
# ---------------------------------------------------------------------------
def test_engine_report_present_even_uninstrumented():
    run = run_parallel(small_config(workers=2))
    assert run.instrumentation is None
    report = run.engine
    assert report.workers == 2
    assert report.lookahead == pytest.approx(run.lookahead)
    assert report.windows == run.windows
    assert len(report.per_worker) == 2
    for row in report.per_worker:
        assert row["windows"] > 0
        assert row["events"] > 0
        assert 0.0 <= row["idle_fraction"] <= 1.0
        assert row["busy_s"] >= 0.0 and row["wait_s"] >= 0.0
    # Boundary traffic flowed both ways between the two workers.
    assert all(row["exports"] > 0 for row in report.per_worker)
    assert all(row["imports"] > 0 for row in report.per_worker)
    doc = report.to_dict()
    assert set(doc) == {"workers", "lookahead_s", "windows", "per_worker"}
    json.dumps(doc)  # JSON-ready, no stray types


def test_jsonl_round_trip_with_engine_records(tmp_path):
    run = run_parallel(small_config(instrument=True, workers=2))
    hub = run.instrumentation
    path = tmp_path / "trace.jsonl"
    hub.export_jsonl(str(path))
    loaded = load_trace_jsonl(str(path))
    assert len(loaded.events) == len(hub.events)
    key = lambda e: (e.time, e.phase, str(e.node), e.cluster, e.round_id)
    assert [key(e) for e in loaded.events] == [key(e) for e in hub.events]
    assert _spans(loaded) == _spans(hub)
    _assert_share_parity(loaded, hub)
    ours = loaded.phase_durations()
    for name, histogram in hub.phase_durations().items():
        assert ours[name].count == histogram.count
    assert loaded.engine_windows == hub.engine_windows
    assert loaded.engine_workers == hub.engine_workers


def test_load_trace_jsonl_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"t": 0.1, "phase": "proposed"\n')
    with pytest.raises(ValueError, match="bad.jsonl:1"):
        load_trace_jsonl(str(path))


def test_profile_dumps_one_pstats_file_per_worker(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "1")
    monkeypatch.setenv("REPRO_PROFILE_OUT", str(tmp_path / "prof"))
    run = run_parallel(small_config(workers=2, duration=0.6, warmup=0.15))
    assert run.result.safety_ok
    for rank in (0, 1):
        dump = tmp_path / f"prof-w{rank}.pstats"
        assert dump.exists(), f"missing worker {rank} profile"
        stats = pstats.Stats(str(dump))
        assert stats.total_calls > 0
