"""Tests for the failure model in isolation."""

from repro.net.failures import FailureModel
from repro.types import replica_id

A = replica_id(1, 1)
B = replica_id(1, 2)


class TestCrashes:
    def test_crash_and_recover(self):
        fm = FailureModel()
        assert not fm.is_crashed(A)
        fm.crash(A)
        assert fm.is_crashed(A)
        assert fm.suppresses_send(A, B, None)
        assert fm.drops_at_receiver(B, A, None)
        fm.recover(A)
        assert not fm.is_crashed(A)
        assert not fm.suppresses_send(A, B, None)

    def test_crashed_nodes_snapshot(self):
        fm = FailureModel()
        fm.crash(A)
        snapshot = fm.crashed_nodes
        fm.crash(B)
        assert A in snapshot and B not in snapshot

    def test_crash_idempotent(self):
        fm = FailureModel()
        fm.crash(A)
        fm.crash(A)
        assert fm.crashed_nodes == frozenset({A})


class TestPartitions:
    def test_sever_is_directed(self):
        fm = FailureModel()
        fm.sever(A, B)
        assert fm.drops_in_flight(A, B, None)
        assert not fm.drops_in_flight(B, A, None)

    def test_sever_bidirectional(self):
        fm = FailureModel()
        fm.sever_bidirectional(A, B)
        assert fm.drops_in_flight(A, B, None)
        assert fm.drops_in_flight(B, A, None)

    def test_heal(self):
        fm = FailureModel()
        fm.sever(A, B)
        fm.heal(A, B)
        assert not fm.drops_in_flight(A, B, None)


class TestRules:
    def test_send_rule_matching(self):
        fm = FailureModel()
        fm.add_send_rule(lambda s, d, m: m == "drop-me")
        assert fm.suppresses_send(A, B, "drop-me")
        assert not fm.suppresses_send(A, B, "keep-me")

    def test_remove_rules_idempotent(self):
        fm = FailureModel()
        rule = fm.add_send_rule(lambda s, d, m: True)
        fm.remove_send_rule(rule)
        fm.remove_send_rule(rule)
        assert not fm.suppresses_send(A, B, None)

    def test_receive_rule_matching(self):
        fm = FailureModel()
        rule = fm.add_receive_rule(lambda s, d, m: s == A)
        assert fm.drops_at_receiver(A, B, None)
        assert not fm.drops_at_receiver(B, A, None)
        fm.remove_receive_rule(rule)
        assert not fm.drops_at_receiver(A, B, None)
