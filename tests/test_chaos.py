"""Tests for the chaos engine: fault specs, selectors, timelines, and
the safety+liveness invariant checker (ISSUE 3)."""

from __future__ import annotations

import json

import pytest

from repro import (
    CrashFault,
    Deployment,
    EquivocateFault,
    ExperimentConfig,
    FaultTimeline,
    LinkDelayFault,
    MessageLossFault,
    OmissionFault,
    PartitionFault,
    TamperFault,
    deployment_digest,
    fault_from_dict,
)
from repro.consensus.pbft import PbftConfig
from repro.core.config import GeoBftConfig
from repro.errors import ConfigurationError
from repro.net.chaos import ChaosContext
from repro.types import replica_id

import random


def small_config(protocol="geobft", **overrides):
    """A 2x4 deployment tuned so recovery fits in a short run."""
    base = dict(
        protocol=protocol, num_clusters=2, replicas_per_cluster=4,
        batch_size=5, clients_per_cluster=1, client_outstanding=2,
        duration=6.0, warmup=0.5, seed=3, fast_crypto=True,
        record_count=100, view_change_timeout=0.8,
        client_retry_timeout=2.0,
        geobft=GeoBftConfig(pbft=PbftConfig(view_change_timeout=0.8,
                                            new_view_timeout=0.8),
                            remote_timeout=0.8),
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestFaultSpecs:
    def test_round_trip_through_dict(self):
        faults = [
            CrashFault("primary:1", at=1.0, name="boom"),
            PartitionFault(["cluster:1"], ["cluster:2"], at=2.0, until=3.0),
            LinkDelayFault(extra_ms=40.0, jitter_ms=5.0, a=["cluster:1"]),
            MessageLossFault(0.25, at=0.5, until=1.5),
            OmissionFault("primary:1", messages=("GlobalShare",)),
            TamperFault("replica:2.1"),
            EquivocateFault(1, name="equiv"),
        ]
        timeline = FaultTimeline(faults, name="rt")
        clone = FaultTimeline.from_json(timeline.to_json())
        assert clone.name == "rt"
        assert len(clone) == len(faults)
        assert [f.describe() for f in clone.faults] == \
            [f.describe() for f in faults]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_from_dict({"kind": "meteor"})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_from_dict({"kind": "crash", "targets": "all",
                             "tragets": "oops"})

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultTimeline.from_json("{not json")

    def test_spec_needs_fault_list(self):
        with pytest.raises(ConfigurationError):
            FaultTimeline.from_dict({"name": "empty"})

    def test_loss_rate_validated(self):
        with pytest.raises(ConfigurationError):
            MessageLossFault(0.0)
        with pytest.raises(ConfigurationError):
            MessageLossFault(1.5)

    def test_window_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            CrashFault("all", at=2.0, until=1.0)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FaultTimeline.load(str(tmp_path / "nope.json"))

    def test_load_file(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({
            "name": "from-disk",
            "faults": [{"kind": "crash", "targets": "backup:1", "at": 1.0}],
        }))
        timeline = FaultTimeline.load(str(path))
        assert timeline.name == "from-disk"
        assert timeline.faults[0].kind == "crash"


class TestSelectors:
    @pytest.fixture
    def ctx(self):
        deployment = Deployment(small_config())
        return ChaosContext(deployment, random.Random(7))

    def test_replica_forms(self, ctx):
        assert ctx.resolve("replica:2.3") == [replica_id(2, 3)]
        assert ctx.resolve("r1.2") == [replica_id(1, 2)]

    def test_cluster_and_all(self, ctx):
        assert ctx.resolve("cluster:1") == \
            [replica_id(1, i) for i in (1, 2, 3, 4)]
        assert len(ctx.resolve("all")) == 8

    def test_primary_and_backups(self, ctx):
        assert ctx.resolve("primary:1") == [replica_id(1, 1)]
        assert replica_id(1, 1) not in ctx.resolve("backups:1")
        assert len(ctx.resolve("backups:1:2")) == 2
        assert len(ctx.resolve("backup:1")) == 1

    def test_primary_tracks_live_view(self, ctx):
        deployment = ctx.deployment
        for node in deployment.cluster_members[1]:
            deployment.replicas[node].engine._view = 3
        assert ctx.resolve("primary:1") == [replica_id(1, 4)]

    def test_unknown_selector_rejected(self, ctx):
        with pytest.raises(ConfigurationError):
            ctx.resolve("rack:7")
        with pytest.raises(ConfigurationError):
            ctx.resolve("cluster:99")

    def test_resolve_many_dedups(self, ctx):
        nodes = ctx.resolve_many(["cluster:1", "replica:1.2"])
        assert nodes.count(replica_id(1, 2)) == 1


class TestTimelineLifecycle:
    def test_install_twice_rejected(self):
        timeline = FaultTimeline([CrashFault("backup:1", at=1.0)])
        timeline.install(Deployment(small_config()))
        with pytest.raises(ConfigurationError):
            timeline.install(Deployment(small_config()))

    def test_second_timeline_on_deployment_rejected(self):
        deployment = Deployment(small_config())
        FaultTimeline([CrashFault("backup:1", at=1.0)]).install(deployment)
        with pytest.raises(ConfigurationError):
            FaultTimeline([CrashFault("backup:2", at=1.0)]).install(
                deployment)


def run_with(protocol, faults, **overrides):
    deployment = Deployment(small_config(protocol, **overrides))
    FaultTimeline(faults, name=f"test-{protocol}").install(deployment)
    result = deployment.run()
    return deployment, result


class TestTimelineRuns:
    def test_timeline_is_deterministic(self):
        digests = []
        for _ in range(2):
            deployment, result = run_with("geobft", [
                CrashFault("primary:1", at=1.0),
                PartitionFault(["cluster:1"], ["cluster:2"],
                               at=2.0, until=3.0),
                TamperFault("replica:2.1"),
            ])
            digests.append(deployment_digest(deployment, result))
        assert digests[0] == digests[1]

    def test_instrumentation_does_not_perturb_timeline(self):
        faults = lambda: [CrashFault("primary:1", at=1.0),
                          EquivocateFault(2)]
        plain, plain_result = run_with("geobft", faults())
        traced, traced_result = run_with("geobft", faults(),
                                         instrument=True)
        assert deployment_digest(plain, plain_result) == \
            deployment_digest(traced, traced_result)
        phases = [e.phase for e in traced.instrumentation.events]
        assert "fault_on" in phases

    def test_partition_heal_liveness(self):
        deployment, result = run_with("geobft", [
            PartitionFault(["cluster:1"], ["cluster:2"], at=1.0,
                           until=2.0, name="wan-cut"),
        ])
        assert result.safety_ok
        assert result.liveness_ok
        log = deployment.timeline.activation_log()
        assert ("wan-cut", "on", 1.0) in log
        assert ("wan-cut", "off", 2.0) in log

    def test_primary_crash_recovers_via_view_change(self):
        deployment, result = run_with("pbft", [
            CrashFault("primary:1", at=1.0, name="kill-primary"),
        ])
        assert result.safety_ok and result.liveness_ok
        assert deployment.invariants.ok

    def test_unrecoverable_fault_opt_out(self):
        # Crashing a whole cluster stalls GeoBFT's global ordering by
        # design; expect_recovery=False tells the checker so.
        deployment, result = run_with("geobft", [
            CrashFault("all", at=1.0, expect_recovery=False),
        ], duration=3.0)
        assert result.liveness_ok
        deployment2, result2 = run_with("geobft", [
            CrashFault("all", at=1.0),
        ], duration=3.0)
        assert not result2.liveness_ok
        assert deployment2.invariants.liveness_failures

    @pytest.mark.parametrize("protocol", ["geobft", "pbft", "zyzzyva",
                                          "hotstuff", "steward"])
    def test_tampering_rejected_everywhere(self, protocol):
        # Byzantine replica 2.1 corrupts consensus payloads for the
        # whole run; every honest verify path must reject them, so the
        # honest ledgers never diverge.
        kinds = ("HsProposal",) if protocol == "hotstuff" else None
        fault = (TamperFault("replica:2.1", messages=kinds)
                 if kinds else TamperFault("replica:2.1"))
        deployment, result = run_with(protocol, [fault], duration=4.0)
        assert result.safety_ok
        assert deployment.invariants.byzantine_excluded == \
            (replica_id(2, 1),)

    @pytest.mark.parametrize("protocol", ["geobft", "pbft"])
    def test_equivocation_rejected(self, protocol):
        # A primary equivocates: half the backups receive a conflicting
        # but well-formed proposal.  Quorum intersection must keep the
        # honest replicas agreed, and the view change must replace the
        # equivocator so commits continue.
        cluster = 2 if protocol == "geobft" else 1
        deployment, result = run_with(protocol, [
            EquivocateFault(cluster, name="equiv"),
        ], duration=8.0)
        assert result.safety_ok
        assert result.liveness_ok
        assert deployment.network._tampered_sends > 0

    def test_delay_and_loss_faults_apply(self):
        deployment, result = run_with("geobft", [
            LinkDelayFault(extra_ms=30.0, at=1.0, until=2.0,
                           a=["cluster:1"], b=["cluster:2"]),
            MessageLossFault(0.2, at=1.0, until=2.0, a=["cluster:1"]),
        ], duration=4.0)
        assert result.safety_ok and result.liveness_ok
        assert deployment.network._delayed_sends > 0

    def test_omission_of_global_shares_triggers_rvc(self):
        deployment, result = run_with("geobft", [
            OmissionFault("primary:1", messages=("GlobalShare",),
                          name="silent-primary"),
        ], duration=8.0, instrument=True)
        assert result.safety_ok
        phases = {e.phase for e in deployment.instrumentation.events}
        assert "rvc_sent" in phases


class TestScenarioRegistry:
    def _deployment(self, protocol="geobft"):
        return Deployment(small_config(protocol))

    def test_register_and_apply(self):
        from repro import apply_scenario, register_scenario, scenario_names
        from repro.bench import scenarios as scen_mod

        calls = []

        def my_scenario(deployment, fail_at):
            calls.append(fail_at)
            return []

        register_scenario("test-custom", my_scenario)
        try:
            assert "test-custom" in scenario_names()
            apply_scenario(self._deployment(), "test-custom", fail_at=2.5)
            assert calls == [2.5]
        finally:
            del scen_mod._REGISTRY["test-custom"]

    def test_duplicate_registration_rejected(self):
        from repro import register_scenario

        with pytest.raises(ConfigurationError):
            register_scenario("primary", lambda d, t: [])
        # replace=True is the escape hatch for intentional overrides.
        from repro.bench.scenarios import _REGISTRY, _scenario_primary
        register_scenario("primary", _scenario_primary, replace=True)
        assert _REGISTRY["primary"] is _scenario_primary

    def test_chaos_smoke_scenario_installs_timeline(self):
        from repro import apply_scenario

        deployment = self._deployment()
        assert apply_scenario(deployment, "chaos_smoke") == []
        assert deployment.timeline is not None
        assert deployment.timeline.name == "chaos-smoke-geobft"

    def test_f_backups_never_targets_rotated_primary(self):
        # Regression: at n = 4 a view change can rotate the primary onto
        # the highest-index replica, which the old index-based victim
        # pick would then crash — exceeding f faulty non-primaries.
        from repro import apply_scenario

        deployment = self._deployment()
        for node in deployment.cluster_members[1]:
            deployment.replicas[node].engine._view = 3
        victims = apply_scenario(deployment, "f_backups")
        assert replica_id(1, 4) not in victims
        assert replica_id(2, 4) in victims
        assert len(victims) == 2

    @pytest.mark.parametrize("protocol", ["geobft", "pbft", "zyzzyva",
                                          "hotstuff", "steward"])
    def test_chaos_smoke_within_fault_bounds(self, protocol):
        # The seeded CI timeline must leave every protocol safe and
        # live (Figure 12 qualitative story).
        from repro import apply_scenario

        deployment = Deployment(small_config(protocol, duration=10.0))
        apply_scenario(deployment, "chaos_smoke")
        result = deployment.run()
        assert result.safety_ok, deployment.invariants.describe()
        assert result.liveness_ok, deployment.invariants.describe()
        assert result.throughput_txn_s > 0
