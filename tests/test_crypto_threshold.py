"""Tests for (k, n) threshold signatures."""

import pytest

from repro.crypto.threshold import (
    THRESHOLD_SIGNATURE_SIZE,
    SignatureShare,
    ThresholdScheme,
)
from repro.errors import CryptoError
from repro.types import replica_id

MEMBERS = [replica_id(1, i) for i in range(1, 8)]  # n = 7
K = 5  # n - f


@pytest.fixture
def scheme():
    return ThresholdScheme("cluster-1", MEMBERS, K)


def make_shares(scheme, payload, count):
    return [
        scheme.share_signer(member)(payload)
        for member in MEMBERS[:count]
    ]


class TestThresholdScheme:
    def test_combine_with_exactly_k_shares(self, scheme):
        shares = make_shares(scheme, "payload", K)
        sig = scheme.combine(shares, "payload")
        assert scheme.verify(sig, "payload")

    def test_combine_with_more_than_k_shares(self, scheme):
        shares = make_shares(scheme, "payload", 7)
        assert scheme.verify(scheme.combine(shares, "payload"), "payload")

    def test_combine_fails_below_threshold(self, scheme):
        shares = make_shares(scheme, "payload", K - 1)
        with pytest.raises(CryptoError):
            scheme.combine(shares, "payload")

    def test_duplicate_shares_do_not_count_twice(self, scheme):
        one = scheme.share_signer(MEMBERS[0])("p")
        with pytest.raises(CryptoError):
            scheme.combine([one] * K, "p")

    def test_invalid_shares_rejected(self, scheme):
        shares = make_shares(scheme, "p", K - 1)
        bogus = SignatureShare(MEMBERS[6], b"\x00" * 32)
        with pytest.raises(CryptoError):
            scheme.combine(shares + [bogus], "p")

    def test_share_for_wrong_payload_rejected(self, scheme):
        shares = make_shares(scheme, "p", K - 1)
        wrong = scheme.share_signer(MEMBERS[6])("other")
        with pytest.raises(CryptoError):
            scheme.combine(shares + [wrong], "p")

    def test_verify_share(self, scheme):
        share = scheme.share_signer(MEMBERS[0])("p")
        assert scheme.verify_share(share, "p")
        assert not scheme.verify_share(share, "q")

    def test_verify_rejects_wrong_payload(self, scheme):
        sig = scheme.combine(make_shares(scheme, "p", K), "p")
        assert not scheme.verify(sig, "q")

    def test_verify_rejects_foreign_group(self, scheme):
        other = ThresholdScheme("cluster-2", MEMBERS, K)
        sig = other.combine(
            [other.share_signer(m)("p") for m in MEMBERS[:K]], "p"
        )
        assert not scheme.verify(sig, "p")

    def test_non_member_cannot_get_signer(self, scheme):
        with pytest.raises(CryptoError):
            scheme.share_signer(replica_id(9, 9))

    def test_constant_signature_size(self, scheme):
        """The whole point (§2.2): certificate proof size independent of
        n and f."""
        sig = scheme.combine(make_shares(scheme, "p", K), "p")
        assert sig.size_bytes() == THRESHOLD_SIGNATURE_SIZE

    def test_invalid_k_rejected(self):
        with pytest.raises(CryptoError):
            ThresholdScheme("g", MEMBERS, 0)
        with pytest.raises(CryptoError):
            ThresholdScheme("g", MEMBERS, len(MEMBERS) + 1)

    def test_accessors(self, scheme):
        assert scheme.group == "cluster-1"
        assert scheme.k == K
