"""Tests for Zyzzyva: speculative fast path, client-driven second phase,
and the collapse under failures the paper measures (§4.3)."""

import pytest

from repro.bench.deployment import Deployment, ExperimentConfig
from repro.types import replica_id


def zyz_config(**overrides):
    defaults = dict(
        protocol="zyzzyva",
        num_clusters=2,
        replicas_per_cluster=4,
        batch_size=5,
        clients_per_cluster=1,
        client_outstanding=2,
        duration=3.0,
        warmup=0.5,
        record_count=500,
        seed=21,
        zyzzyva_spec_timeout=0.4,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def run(config):
    deployment = Deployment(config)
    result = deployment.run()
    return deployment, result


class TestFastPath:
    def test_failure_free_run_completes_batches(self):
        deployment, result = run(zyz_config())
        assert result.throughput_txn_s > 0
        assert all(c.completed_batches > 3 for c in deployment.clients)

    def test_replicas_execute_identical_sequences(self):
        deployment, _result = run(zyz_config())
        assert deployment.check_safety()
        heights = {r.ledger.height for r in deployment.replicas.values()}
        assert max(heights) > 5

    def test_speculative_execution_is_in_seq_order(self):
        deployment, _result = run(zyz_config())
        for replica in deployment.replicas.values():
            rounds = [block.round_id for block in replica.ledger]
            assert rounds == sorted(rounds)

    def test_fast_path_latency_below_spec_timeout(self):
        """Without failures clients complete well before the timeout
        kicks in — the fast path works."""
        _deployment, result = run(zyz_config())
        assert result.avg_latency_s < 0.4


class TestFailureCollapse:
    def test_single_backup_crash_collapses_throughput(self):
        """§4.3: 'the throughput of Zyzzyva plummets to zero' with even
        one crashed replica."""
        healthy_dep, healthy = run(zyz_config())
        config = zyz_config()
        deployment = Deployment(config)
        deployment.network.failures.crash(replica_id(2, 4))
        for client in deployment.clients:
            deployment.sim.schedule(0.0, client.start)
        deployment.sim.run(until=config.duration)
        deployment.metrics.finish(deployment.sim.now)
        degraded = deployment.metrics.throughput_txn_s()
        assert degraded < healthy.throughput_txn_s * 0.25

    def test_commit_phase_still_completes_requests(self):
        """The slow path (client certificate + local commits) makes
        progress, just slowly."""
        config = zyz_config(duration=5.0)
        deployment = Deployment(config)
        deployment.network.failures.crash(replica_id(2, 4))
        for client in deployment.clients:
            deployment.sim.schedule(0.0, client.start)
        deployment.sim.run(until=config.duration)
        assert any(c.completed_batches > 0 for c in deployment.clients)

    def test_latency_inflates_under_failure(self):
        config = zyz_config(duration=5.0)
        deployment = Deployment(config)
        deployment.network.failures.crash(replica_id(2, 4))
        for client in deployment.clients:
            deployment.sim.schedule(0.0, client.start)
        deployment.sim.run(until=config.duration)
        deployment.metrics.finish(deployment.sim.now)
        # Every batch now pays at least the speculative timeout.
        assert deployment.metrics.avg_latency_s() >= 0.4
