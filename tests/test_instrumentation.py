"""Tests for the observability layer: histograms, the instrumentation
hub, trace export, metrics percentiles, and cache/queue telemetry."""

import json

import pytest

from repro.bench.deployment import Deployment, deployment_digest
from repro.bench.instrumentation import (
    EVENT_PHASES,
    LIFECYCLE,
    Instrumentation,
    LatencyHistogram,
    WorkerInstrumentation,
)
from repro.bench.metrics import Metrics
from repro.crypto.digests import EncodingCacheStats
from repro.crypto.signatures import VerificationCache
from repro.types import replica_id

from .conftest import small_config


class FakeSim:
    """A clock the hub can read without a real simulator."""

    def __init__(self):
        self.now = 0.0


class FakeWorkerSim(FakeSim):
    """A clock plus the firing-event tie key a worker hub stamps."""

    def __init__(self):
        super().__init__()
        self.fire_tie = None


# ----------------------------------------------------------------------
# LatencyHistogram
# ----------------------------------------------------------------------
def test_histogram_basic_stats():
    hist = LatencyHistogram()
    for value in (0.010, 0.020, 0.030):
        hist.record(value)
    assert hist.count == 3
    assert hist.min == pytest.approx(0.010)
    assert hist.max == pytest.approx(0.030)
    assert hist.mean() == pytest.approx(0.020)


def test_histogram_quantiles_bounded_by_observed_range():
    hist = LatencyHistogram()
    for i in range(1, 1001):
        hist.record(i / 1000.0)  # 1ms .. 1s uniform
    p = hist.percentiles()
    assert hist.min <= p["p50"] <= p["p95"] <= p["p99"] <= hist.max
    # Log-bucket relative error is bounded by the growth factor (~19%).
    assert p["p50"] == pytest.approx(0.5, rel=0.2)
    assert p["p99"] == pytest.approx(0.99, rel=0.2)


def test_histogram_single_value_quantiles_exact():
    hist = LatencyHistogram()
    for _ in range(100):
        hist.record(0.042)
    p = hist.percentiles()
    # min/max clamping makes a constant stream exact at every quantile.
    assert p["p50"] == p["p95"] == p["p99"] == pytest.approx(0.042)


def test_histogram_empty_and_negative():
    hist = LatencyHistogram()
    assert hist.quantile(0.5) == 0.0
    assert hist.mean() == 0.0
    hist.record(-1.0)  # clamps to zero rather than raising
    assert hist.count == 1
    assert hist.min == 0.0


def test_histogram_merge():
    a, b = LatencyHistogram(), LatencyHistogram()
    for v in (0.001, 0.002):
        a.record(v)
    for v in (0.003, 0.004):
        b.record(v)
    a.merge(b)
    assert a.count == 4
    assert a.min == pytest.approx(0.001)
    assert a.max == pytest.approx(0.004)
    assert a.mean() == pytest.approx(0.0025)


def test_histogram_merge_geometry_mismatch():
    a = LatencyHistogram()
    b = LatencyHistogram(min_value=1e-3)
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_merge_even_length_median_matches_reference():
    # Two worker hubs each saw half the samples; after the merge the
    # even-length median (and every other quantile) must be exactly what
    # one hub recording all four values would report.
    a, b, reference = (LatencyHistogram() for _ in range(3))
    for v in (1.0, 2.0):
        a.record(v)
    for v in (3.0, 4.0):
        b.record(v)
    for v in (1.0, 2.0, 3.0, 4.0):
        reference.record(v)
    a.merge(b)
    assert a.count == reference.count == 4
    assert a.total == pytest.approx(reference.total)
    assert a.min == reference.min and a.max == reference.max
    assert a.quantile(0.5) == reference.quantile(0.5)
    assert a.percentiles() == reference.percentiles()


def test_histogram_merge_empty_is_noop_both_ways():
    empty, full = LatencyHistogram(), LatencyHistogram()
    for v in (0.010, 0.020):
        full.record(v)
    before = (full.count, full.total, full.min, full.max,
              full.percentiles())
    full.merge(empty)
    assert (full.count, full.total, full.min, full.max,
            full.percentiles()) == before
    empty.merge(full)
    assert empty.count == 2
    assert empty.percentiles() == full.percentiles()


def test_histogram_invalid_geometry():
    with pytest.raises(ValueError):
        LatencyHistogram(min_value=0)
    with pytest.raises(ValueError):
        LatencyHistogram(growth=1.0)
    with pytest.raises(ValueError):
        LatencyHistogram(buckets=1)


# ----------------------------------------------------------------------
# Instrumentation hub (unit, with a fake clock)
# ----------------------------------------------------------------------
def test_hub_first_seen_marks_and_durations():
    sim = FakeSim()
    hub = Instrumentation(sim)
    node = replica_id(1, 1)
    times = {"proposed": 1.0, "prepared": 1.5, "committed": 2.5,
             "executed": 3.0}
    for phase, t in times.items():
        sim.now = t
        hub.phase(phase, node, 1, 7)
    # Duplicate emissions (other replicas) must not move the first mark.
    sim.now = 9.0
    hub.phase("committed", replica_id(1, 2), 1, 7)
    span = hub.round_span(1, 7)
    assert span == times
    assert hub.rounds() == [(1, 7)]
    assert hub.committed_rounds() == 1
    durations = hub.phase_durations()
    assert durations["proposed->prepared"].mean() == pytest.approx(0.5)
    assert durations["prepared->committed"].mean() == pytest.approx(1.0)
    assert durations["proposed->executed"].mean() == pytest.approx(2.0)
    # No "shared" mark: the skipped phase never produces a key.
    assert "committed->shared" not in durations


def test_hub_share_latency():
    sim = FakeSim()
    hub = Instrumentation(sim)
    sim.now = 1.0
    hub.phase("shared", replica_id(1, 1), 1, 3)
    sim.now = 1.020
    hub.phase("share_received", replica_id(2, 1), 1, 3, detail=2)
    sim.now = 1.999  # second receiver in the same cluster: ignored
    hub.phase("share_received", replica_id(2, 2), 1, 3, detail=2)
    latency = hub.share_latency()
    assert set(latency) == {(1, 2)}
    assert latency[(1, 2)].count == 1
    assert latency[(1, 2)].mean() == pytest.approx(0.020)


def test_hub_event_buffer_bounded():
    sim = FakeSim()
    hub = Instrumentation(sim, max_events=5)
    node = replica_id(1, 1)
    for i in range(10):
        hub.phase("proposed", node, 1, i)
    assert len(hub.events) == 5
    assert hub.dropped_events == 5
    assert len(hub.warnings) == 1  # warn_once fires exactly once
    # Marks are still complete: only the raw event log is bounded.
    assert len(hub.rounds()) == 10


def test_hub_warn_once_and_counters(capsys):
    hub = Instrumentation(FakeSim())
    hub.warn_once("k", "message one")
    hub.warn_once("k", "message two")
    assert hub.warnings == ["message one"]
    assert "[instrumentation] message one" in capsys.readouterr().err
    hub.count("drops")
    hub.count("drops", 2)
    assert hub.counters["drops"] == 3
    hub.sample("depth", 4.0)
    hub.sample("depth", 6.0)
    assert hub.samples["depth"].count == 2
    assert hub.samples["depth"].mean() == pytest.approx(5.0)


# ----------------------------------------------------------------------
# Merging parallel worker hubs
# ----------------------------------------------------------------------
def test_merge_marks_take_per_key_min():
    # Two workers both observed round (1, 7); the merged first-seen mark
    # is the earlier one — identical to serial first-seen semantics.
    sims = FakeSim(), FakeSim()
    hubs = Instrumentation(sims[0]), Instrumentation(sims[1])
    node = replica_id(1, 1)
    sims[0].now = 2.0
    hubs[0].phase("proposed", node, 1, 7)
    sims[1].now = 1.0
    hubs[1].phase("proposed", replica_id(1, 2), 1, 7)
    sims[1].now = 1.5
    hubs[1].phase("prepared", replica_id(1, 2), 1, 7)
    hubs[0].merge(hubs[1])
    assert hubs[0].round_span(1, 7) == {"proposed": 1.0, "prepared": 1.5}


def test_merge_share_marks_counters_and_samples():
    sims = FakeSim(), FakeSim()
    hubs = Instrumentation(sims[0]), Instrumentation(sims[1])
    sims[0].now = 1.0
    hubs[0].phase("shared", replica_id(1, 1), 1, 3)
    sims[0].now = 1.050
    hubs[0].phase("share_received", replica_id(2, 1), 1, 3, detail=2)
    sims[1].now = 1.020  # another worker saw the share arrive earlier
    hubs[1].phase("share_received", replica_id(2, 2), 1, 3, detail=2)
    hubs[0].count("drops", 2)
    hubs[1].count("drops", 3)
    hubs[1].count("tampers")
    hubs[0].sample("depth", 4.0)
    hubs[1].sample("depth", 6.0)
    hubs[0].merge(hubs[1])
    latency = hubs[0].share_latency()
    assert latency[(1, 2)].mean() == pytest.approx(0.020)
    assert hubs[0].counters == {"drops": 5, "tampers": 1}
    assert hubs[0].samples["depth"].count == 2
    assert hubs[0].samples["depth"].mean() == pytest.approx(5.0)


def test_merge_restores_engine_event_order():
    # Worker hubs stamp each event with the engine's composite tie key;
    # the merged stream is sorted by (time, key), which interleaves the
    # workers exactly as the serial engine would have fired them.
    sims = FakeWorkerSim(), FakeWorkerSim()
    hubs = (WorkerInstrumentation(sims[0], 0),
            WorkerInstrumentation(sims[1], 1))
    node = replica_id(1, 1)
    for k in (0, 2):  # worker 0 mints even k residues
        sims[0].now = 1.0
        sims[0].fire_tie = (0.5, 0.0, 1, k)
        hubs[0].phase("proposed", node, 1, k)
    for k in (1, 3):  # worker 1 mints odd k residues
        sims[1].now = 1.0
        sims[1].fire_tie = (0.5, 0.0, 1, k)
        hubs[1].phase("proposed", node, 2, k)
    merged = Instrumentation(None)
    merged.merge(hubs[1])  # fold order must not matter
    merged.merge(hubs[0])
    assert [e.round_id for e in merged.events] == [0, 1, 2, 3]


def test_merge_pre_run_events_sort_first():
    # Events emitted before any simulator event fires (deployment build
    # time) carry a sentinel key that sorts ahead of every real one.
    sim = FakeWorkerSim()
    hub = WorkerInstrumentation(sim, 0)
    sim.fire_tie = (0.0, 0.0, 1, 0)
    hub.phase("proposed", replica_id(1, 1), 1, 1)
    pre = WorkerInstrumentation(FakeWorkerSim(), 1)  # fire_tie is None
    pre.phase("fault_on", "timeline", 0, 0)
    hub.merge(pre)
    assert [e.phase for e in hub.events] == ["fault_on", "proposed"]


def test_merge_keyed_unkeyed_mismatch_raises():
    keyed = WorkerInstrumentation(FakeWorkerSim(), 0)
    keyed.phase("proposed", replica_id(1, 1), 1, 1)
    unkeyed = Instrumentation(FakeSim())
    unkeyed.phase("proposed", replica_id(1, 1), 1, 2)
    with pytest.raises(ValueError):
        unkeyed.merge(keyed)
    with pytest.raises(ValueError):
        keyed.merge(unkeyed)


def test_merge_empty_hub_is_noop():
    sim = FakeWorkerSim()
    hub = WorkerInstrumentation(sim, 0)
    sim.now = 1.0
    sim.fire_tie = (1.0, 0.0, 1, 0)
    hub.phase("proposed", replica_id(1, 1), 1, 4)
    hub.count("drops")
    empty = WorkerInstrumentation(FakeWorkerSim(), 1)
    hub.merge(empty)
    assert len(hub.events) == 1
    assert hub.round_span(1, 4) == {"proposed": 1.0}
    assert hub.counters == {"drops": 1}
    # ... and an empty orchestrator hub absorbs a worker hub wholesale.
    fresh = Instrumentation(None)
    fresh.merge(hub)
    assert [e.phase for e in fresh.events] == ["proposed"]
    assert fresh.counters == {"drops": 1}


def test_worker_hub_dedupes_shared_rank0_emissions():
    # Orchestration events (rank-0 ties) fire once per worker; only
    # worker 0 records them, so the merged trace sees each exactly once.
    sims = FakeWorkerSim(), FakeWorkerSim()
    hubs = (WorkerInstrumentation(sims[0], 0),
            WorkerInstrumentation(sims[1], 1))
    for sim, hub in zip(sims, hubs):
        sim.now = 0.5
        sim.fire_tie = (0.5, 0.0, 0, 0)  # rank 0: shared orchestration
        hub.phase("fault_on", "timeline", 0, 0)
        hub.count("chaos.activations")
    assert len(hubs[0].events) == 1
    assert len(hubs[1].events) == 0  # suppressed at the source
    assert hubs[1].counters == {}
    sims[1].fire_tie = (0.6, 0.0, 2, 1)  # worker-local event: recorded
    hubs[1].phase("proposed", replica_id(2, 1), 2, 1)
    hubs[0].merge(hubs[1])
    assert [e.phase for e in hubs[0].events] == ["fault_on", "proposed"]
    assert hubs[0].counters == {"chaos.activations": 1}


# ----------------------------------------------------------------------
# Instrumented runs (integration)
# ----------------------------------------------------------------------
def test_geobft_instrumented_run_produces_spans():
    deployment = Deployment(small_config(
        "geobft", fast_crypto=True, duration=1.5, warmup=0.3,
        instrument=True))
    result = deployment.run()
    assert result.safety_ok
    hub = deployment.instrumentation
    assert hub.committed_rounds() > 0
    durations = hub.phase_durations()
    for key in ("proposed->prepared", "prepared->committed",
                "committed->shared", "shared->ordered",
                "proposed->executed"):
        assert key in durations and durations[key].count > 0
    # Both clusters shared to each other.
    assert {(1, 2), (2, 1)} <= set(hub.share_latency())
    for name in ("geobft.in_flight", "geobft.queued_requests",
                 "sim.pending_events"):
        assert name in hub.samples
    # Every committed round carries the full lifecycle prefix.
    cluster, round_id = hub.rounds()[0]
    span = hub.round_span(cluster, round_id)
    assert list(span) == [p for p in LIFECYCLE if p in span]


def test_instrumentation_disabled_is_none():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=1.0, warmup=0.2))
    assert deployment.instrumentation is None
    for replica in deployment.replicas.values():
        assert replica.instrumentation is None


def test_instrumentation_does_not_perturb_results():
    """The acceptance criterion: trace on == trace off, byte for byte."""
    digests = []
    for instrument in (False, True):
        deployment = Deployment(small_config(
            "geobft", fast_crypto=True, duration=1.5, warmup=0.3,
            instrument=instrument))
        result = deployment.run()
        digests.append(deployment_digest(deployment, result))
    assert digests[0] == digests[1]


@pytest.mark.parametrize("protocol", ["pbft", "zyzzyva", "hotstuff",
                                      "steward"])
def test_other_protocols_emit_lifecycle(protocol):
    deployment = Deployment(small_config(
        protocol, fast_crypto=True, duration=1.5, warmup=0.3,
        instrument=True))
    result = deployment.run()
    assert result.safety_ok
    hub = deployment.instrumentation
    phases = {e.phase for e in hub.events}
    assert "proposed" in phases
    assert "executed" in phases
    assert hub.phase_durations()["proposed->executed"].count > 0


def test_exports(tmp_path):
    deployment = Deployment(small_config(
        "geobft", fast_crypto=True, duration=1.0, warmup=0.2,
        instrument=True))
    deployment.run()
    hub = deployment.instrumentation

    jsonl = tmp_path / "trace.jsonl"
    written = hub.export_jsonl(str(jsonl))
    lines = jsonl.read_text().splitlines()
    assert written == len(hub.events) == len(lines)
    first = json.loads(lines[0])
    assert {"t", "phase", "node", "cluster", "round", "detail"} <= set(first)

    chrome = tmp_path / "trace.json"
    count = hub.export_chrome_trace(str(chrome))
    document = json.loads(chrome.read_text())
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    assert len(events) == count
    spans = [e for e in events if e["ph"] == "X"]
    assert spans and all(e["dur"] >= 0 for e in spans)
    assert {e["cat"] for e in spans} == {"lifecycle", "global-share"}
    metadata = [e for e in events if e["ph"] == "M"]
    assert {e["args"]["name"] for e in metadata} == {"cluster 1",
                                                     "cluster 2"}
    instants = [e for e in events if e["ph"] == "i"]
    assert all(e["name"] in EVENT_PHASES for e in instants)
    assert "committed rounds" in hub.summary()


# ----------------------------------------------------------------------
# Metrics: percentile fixes and offered load
# ----------------------------------------------------------------------
def test_p50_even_interpolates():
    metrics = Metrics(warmup=0.0)
    client = replica_id(1, 1)
    for latency in (1.0, 2.0, 3.0, 10.0):
        metrics.record_completed(client, 1, latency, now=1.0)
    assert metrics.p50_latency_s() == pytest.approx(2.5)


def test_p50_odd_unchanged():
    metrics = Metrics(warmup=0.0)
    client = replica_id(1, 1)
    for latency in (1.0, 2.0, 10.0):
        metrics.record_completed(client, 1, latency, now=1.0)
    assert metrics.p50_latency_s() == pytest.approx(2.0)


def test_tail_percentiles_ordered():
    metrics = Metrics(warmup=0.0)
    client = replica_id(1, 1)
    for i in range(1, 101):
        metrics.record_completed(client, 1, i / 100.0, now=1.0)
    assert (metrics.p50_latency_s() <= metrics.p95_latency_s()
            <= metrics.p99_latency_s())
    assert metrics.latency_histogram().count == 100


def test_offered_load_excludes_warmup():
    metrics = Metrics(warmup=1.0)
    client = replica_id(1, 1)
    metrics.record_submitted(client, 100, now=0.5)   # warmup: excluded
    metrics.record_submitted(client, 100, now=1.5)
    metrics.record_submitted(client, 100, now=2.5)
    metrics.finish(now=3.0)
    assert metrics.submitted_txns == 300
    assert metrics.measured_submitted_txns == 200
    assert metrics.offered_load_txn_s() == pytest.approx(100.0)


# ----------------------------------------------------------------------
# Cache and runtime telemetry
# ----------------------------------------------------------------------
def test_verification_cache_kind_stats():
    cache = VerificationCache()
    cache.get(("sig", "a"))           # miss
    cache.put(("sig", "a"), True)
    cache.get(("sig", "a"))           # hit
    cache.get(("mac", "b"))           # miss
    cache.get((1, 2))                 # untagged -> "other"
    stats = cache.kind_stats()
    assert stats["sig"] == {"hits": 1, "misses": 1}
    assert stats["mac"] == {"hits": 0, "misses": 1}
    assert stats["other"] == {"hits": 0, "misses": 1}
    assert cache.hit_rate() == pytest.approx(0.25)
    # The aggregate counters tests already relied on stay coherent.
    assert cache.hits == 1 and cache.misses == 3


def test_encoding_stats_snapshot_delta():
    stats = EncodingCacheStats()
    stats.encode_misses += 2
    baseline = stats.snapshot()
    stats.encode_hits += 3
    stats.splice_hits += 1
    delta = stats.delta_since(baseline)
    assert delta["encode_hits"] == 3
    assert delta["encode_misses"] == 0
    assert delta["splice_hits"] == 1
    stats.reset()
    assert stats.snapshot()["encode_misses"] == 0


def test_deployment_cache_and_runtime_telemetry():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=1.0, warmup=0.2))
    deployment.run()
    delta = deployment.encoding_cache_delta()
    assert delta["splice_hits"] > 0  # re-broadcasts reuse cached bytes
    assert deployment.sim.max_queue_depth > 0
    net = deployment.network.telemetry()
    assert net["sends"] > 0
    assert net["in_flight_drops"] == 0  # nothing crashed


def test_real_crypto_populates_verification_cache():
    deployment = Deployment(small_config("geobft", fast_crypto=False,
                                         duration=1.0, warmup=0.2))
    deployment.run()
    cache = deployment.verification_cache
    assert cache.hits > 0
    assert "sig" in cache.kind_stats()
    assert 0.0 < cache.hit_rate() <= 1.0
