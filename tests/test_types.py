"""Tests for identifier types and fault-tolerance arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.types import (
    ClusterSpec,
    NodeId,
    client_id,
    max_faulty,
    quorum_size,
    replica_id,
)


class TestNodeId:
    def test_replica_id_fields(self):
        node = replica_id(3, 5)
        assert node.kind == "replica"
        assert node.cluster == 3
        assert node.index == 5

    def test_client_id_fields(self):
        node = client_id(2, 1)
        assert node.kind == "client"
        assert node.cluster == 2

    def test_str_form(self):
        assert str(replica_id(1, 2)) == "r1.2"
        assert str(client_id(4, 9)) == "c4.9"

    def test_ids_are_hashable_and_equal_by_value(self):
        assert replica_id(1, 2) == replica_id(1, 2)
        assert len({replica_id(1, 2), replica_id(1, 2)}) == 1

    def test_replica_and_client_with_same_numbers_differ(self):
        assert replica_id(1, 1) != client_id(1, 1)

    def test_ids_are_orderable(self):
        assert sorted([replica_id(2, 1), replica_id(1, 2)])[0].cluster == 1

    def test_invalid_index_rejected(self):
        with pytest.raises(ConfigurationError):
            replica_id(1, 0)
        with pytest.raises(ConfigurationError):
            client_id(1, -1)


class TestFaultArithmetic:
    @pytest.mark.parametrize("n,f", [(4, 1), (5, 1), (6, 1), (7, 2),
                                     (10, 3), (13, 4), (60, 19)])
    def test_max_faulty(self, n, f):
        assert max_faulty(n) == f

    @pytest.mark.parametrize("n", [4, 7, 10, 13])
    def test_n_exceeds_3f(self, n):
        assert n > 3 * max_faulty(n)

    def test_quorum_is_n_minus_f(self):
        assert quorum_size(7) == 5
        assert quorum_size(4) == 3

    def test_invalid_n_rejected(self):
        with pytest.raises(ConfigurationError):
            max_faulty(0)

    @given(st.integers(min_value=4, max_value=1000))
    def test_quorum_intersection_property(self, n):
        """Two n-f quorums always intersect in > f replicas — the
        foundation of PBFT safety."""
        f = max_faulty(n)
        quorum = n - f
        # |Q1 ∩ Q2| >= 2*quorum - n > f
        assert 2 * quorum - n > f


class TestClusterSpec:
    def test_properties(self):
        spec = ClusterSpec(1, "oregon", 7)
        assert spec.f == 2
        assert spec.quorum == 5
        assert len(spec.replicas()) == 7
        assert spec.replicas()[0] == replica_id(1, 1)

    def test_too_small_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(1, "oregon", 3)

    def test_replicas_belong_to_cluster(self):
        spec = ClusterSpec(9, "iowa", 4)
        assert all(r.cluster == 9 for r in spec.replicas())
