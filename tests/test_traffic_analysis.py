"""Tests for WAN traffic analysis and per-pair accounting."""

import pytest

from repro.analysis.traffic import (
    busiest_sender_region,
    cross_region_totals,
    format_link_report,
    link_usage,
)
from repro.bench.deployment import Deployment

from .conftest import small_config


def run_deployment(protocol):
    deployment = Deployment(small_config(protocol, fast_crypto=True,
                                         duration=2.0, warmup=0.4))
    result = deployment.run()
    return deployment, result


class TestPairAccounting:
    def test_pair_bytes_populated(self):
        deployment, _ = run_deployment("geobft")
        pairs = deployment.metrics.pair_bytes()
        assert pairs
        assert ("oregon", "iowa") in pairs
        assert ("oregon", "oregon") in pairs

    def test_cross_region_totals_exclude_local(self):
        deployment, _ = run_deployment("geobft")
        cross = cross_region_totals(deployment.metrics)
        assert all(src != dst for src, dst in cross)
        assert sum(cross.values()) == deployment.metrics.global_bytes


class TestLinkUsage:
    def test_rows_sorted_by_volume(self):
        deployment, result = run_deployment("geobft")
        rows = link_usage(deployment.metrics, deployment.topology,
                          window=result.duration)
        volumes = [row.bytes_sent for row in rows]
        assert volumes == sorted(volumes, reverse=True)
        for row in rows:
            assert row.capacity_mbit > 0
            assert row.throughput_mbit >= 0

    def test_empty_window(self):
        deployment, _ = run_deployment("geobft")
        assert link_usage(deployment.metrics, deployment.topology, 0) == []

    def test_report_formatting(self):
        deployment, result = run_deployment("geobft")
        rows = link_usage(deployment.metrics, deployment.topology,
                          window=result.duration)
        report = format_link_report(rows)
        assert "oregon" in report
        assert "util" in report


class TestBottleneckIdentification:
    def test_pbft_bottleneck_is_the_primary_region(self):
        """Flat PBFT's primary sits in Oregon: Oregon emits nearly all
        cross-region bytes (the paper's §1.1 bottleneck)."""
        deployment, _ = run_deployment("pbft")
        region, sent = busiest_sender_region(deployment.metrics)
        assert region == "oregon"
        cross = cross_region_totals(deployment.metrics)
        total = sum(cross.values())
        assert sent / total > 0.5

    def test_geobft_spreads_the_load(self):
        """GeoBFT has a primary per region: no region dominates the
        cross-region traffic the way PBFT's Oregon does."""
        geo_dep, _ = run_deployment("geobft")
        pbft_dep, _ = run_deployment("pbft")

        def dominance(metrics):
            cross = cross_region_totals(metrics)
            total = sum(cross.values())
            _region, sent = busiest_sender_region(metrics)
            return sent / total

        assert dominance(geo_dep.metrics) < dominance(pbft_dep.metrics)

    def test_geobft_cross_bytes_far_below_pbft(self):
        geo_dep, geo = run_deployment("geobft")
        pbft_dep, pbft = run_deployment("pbft")
        geo_per_txn = geo.global_bytes / max(1, geo.completed_txns)
        pbft_per_txn = pbft.global_bytes / max(1, pbft.completed_txns)
        assert geo_per_txn < pbft_per_txn
