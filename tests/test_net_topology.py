"""Tests for the Table 1 topology."""

import pytest

from repro.errors import ConfigurationError
from repro.net.topology import PAPER_REGIONS, Topology


class TestPaperTopology:
    def test_region_order_matches_paper(self):
        assert PAPER_REGIONS == ("oregon", "iowa", "montreal", "belgium",
                                 "taiwan", "sydney")

    def test_prefix_selection(self):
        topo = Topology.paper(3)
        assert topo.regions == ("oregon", "iowa", "montreal")

    def test_invalid_region_count(self):
        with pytest.raises(ConfigurationError):
            Topology.paper(0)
        with pytest.raises(ConfigurationError):
            Topology.paper(7)

    @pytest.mark.parametrize("a,b,rtt", [
        ("oregon", "iowa", 38.0),
        ("oregon", "sydney", 161.0),
        ("iowa", "taiwan", 153.0),
        ("belgium", "sydney", 270.0),
        ("montreal", "belgium", 82.0),
        ("taiwan", "sydney", 137.0),
    ])
    def test_table1_rtt_values(self, a, b, rtt):
        topo = Topology.paper(6)
        assert topo.rtt_ms(a, b) == pytest.approx(rtt)
        assert topo.rtt_ms(b, a) == pytest.approx(rtt)  # symmetric

    @pytest.mark.parametrize("a,b,mbit", [
        ("oregon", "oregon", 7998.0),
        ("oregon", "iowa", 669.0),
        ("iowa", "iowa", 10004.0),
        ("belgium", "sydney", 66.0),
        ("montreal", "taiwan", 111.0),
    ])
    def test_table1_bandwidth_values(self, a, b, mbit):
        topo = Topology.paper(6)
        assert topo.bandwidth_mbit(a, b) == pytest.approx(mbit)

    def test_intra_region_rtt_is_one_ms(self):
        topo = Topology.paper(6)
        for region in topo.regions:
            assert topo.rtt_ms(region, region) == pytest.approx(1.0)

    def test_latency_is_half_rtt_in_seconds(self):
        topo = Topology.paper(2)
        assert topo.latency("oregon", "iowa") == pytest.approx(0.019)

    def test_paper_claim_global_latency_dominates_local(self):
        """§1.1: global latencies are 33–270x higher than local ones."""
        topo = Topology.paper(6)
        for a in topo.regions:
            for b in topo.regions:
                if a != b:
                    ratio = topo.rtt_ms(a, b) / topo.rtt_ms(a, a)
                    assert 33.0 <= ratio <= 270.0

    def test_paper_claim_local_bandwidth_dominates_global(self):
        """§1.1: local throughput is 10–151x higher than global."""
        topo = Topology.paper(6)
        for a in topo.regions:
            for b in topo.regions:
                if a != b:
                    ratio = (topo.bandwidth_mbit(a, a)
                             / topo.bandwidth_mbit(a, b))
                    assert 10.0 <= ratio <= 152.0

    def test_is_local(self):
        topo = Topology.paper(2)
        assert topo.is_local("oregon", "oregon")
        assert not topo.is_local("oregon", "iowa")


class TestCustomTopologies:
    def test_uniform(self):
        topo = Topology.uniform(["a", "b"], rtt_ms=10.0, bandwidth_mbit=100.0)
        assert topo.rtt_ms("a", "b") == pytest.approx(10.0)
        assert topo.bandwidth_mbit("a", "a") == pytest.approx(100.0)

    def test_custom_symmetrizes(self):
        topo = Topology.custom(
            ["a", "b"],
            {("a", "a"): 1.0, ("b", "b"): 1.0, ("a", "b"): 50.0},
            {("a", "a"): 1000.0, ("b", "b"): 1000.0, ("a", "b"): 10.0},
        )
        assert topo.rtt_ms("b", "a") == pytest.approx(50.0)

    def test_missing_link_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology.custom(["a", "b"], {("a", "a"): 1.0}, {("a", "a"): 1.0})

    def test_duplicate_regions_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology.uniform(["a", "a"])

    def test_unknown_pair_rejected(self):
        topo = Topology.uniform(["a", "b"])
        with pytest.raises(ConfigurationError):
            topo.link("a", "zz")

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology.custom(["a"], {("a", "a"): 1.0}, {("a", "a"): 0.0})
