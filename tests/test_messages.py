"""Tests for message types and the paper's wire-size model (§4)."""

import pytest

from repro.consensus.messages import (
    Checkpoint,
    ClientReply,
    ClientRequestBatch,
    Commit,
    CommitCertificate,
    Drvc,
    GlobalShare,
    HsProposal,
    HsQuorumCert,
    HsVote,
    LocalCommit,
    OrderedRequest,
    PrePrepare,
    Prepare,
    Rvc,
    SpecResponse,
    preprepare_size_bytes,
    reply_size_bytes,
    request_size_bytes,
)
from repro.crypto.signatures import KeyRegistry
from repro.errors import InvalidCertificateError
from repro.ledger.block import Transaction
from repro.types import client_id, replica_id


def make_request(batch_size=100, cluster=1, registry=None):
    client = client_id(cluster, 1)
    batch = tuple(
        Transaction(f"t{i}", "update", i, "v") for i in range(batch_size)
    )
    unsigned = ClientRequestBatch("b1", client, batch, None)
    signature = None
    if registry is not None:
        signature = registry.register(client).sign(unsigned.payload())
    return ClientRequestBatch("b1", client, batch, signature)


def make_certificate(registry, batch_size=100, cluster=1, n=7, view=0,
                     round_id=1, digest=None):
    request = make_request(batch_size, cluster, registry)
    digest = digest if digest is not None else request.digest()
    commits = []
    quorum = n - (n - 1) // 3
    for i in range(1, quorum + 1):
        replica = replica_id(cluster, i)
        unsigned = Commit(cluster, view, round_id, digest, replica, None)
        signer = registry.register(replica)
        commits.append(Commit(cluster, view, round_id, digest, replica,
                              signer.sign(unsigned.payload())))
    return CommitCertificate(cluster, round_id, view, request,
                             tuple(commits))


class TestPaperSizes:
    """The concrete byte sizes the paper reports for batch size 100."""

    def test_preprepare_is_5_4_kb(self):
        assert preprepare_size_bytes(100) == 5400
        request = make_request(100)
        pp = PrePrepare(1, 0, 1, request.digest(), request)
        assert pp.size_bytes() == 5400

    def test_certificate_is_6_4_kb_with_seven_commits(self):
        """§4: commit certificates are 6.4 kB, containing seven commit
        messages and a pre-prepare message."""
        registry = KeyRegistry()
        cert = make_certificate(registry, batch_size=100, n=10)
        assert len(cert.commits) == 7
        assert cert.size_bytes() == 5400 + 7 * 143  # 6401 ~ 6.4 kB

    def test_client_reply_is_1_5_kb(self):
        assert reply_size_bytes(100) == 1500
        reply = ClientReply("b", replica_id(1, 1), 1, 1, b"d", 100)
        assert reply.size_bytes() == 1500

    def test_other_messages_are_250_bytes(self):
        small = [
            Prepare(1, 0, 1, b"d", replica_id(1, 1)),
            Commit(1, 0, 1, b"d", replica_id(1, 1), None),
            Checkpoint(1, 6, b"d", replica_id(1, 1), None),
            Drvc(2, 1, 0, replica_id(1, 1)),
            Rvc(2, 1, 0, replica_id(1, 1), None),
            HsVote("prepare", 0, 1, b"d", replica_id(1, 1), None),
            LocalCommit(0, 1, "b", replica_id(1, 1)),
        ]
        assert all(m.size_bytes() == 250 for m in small)

    def test_sizes_scale_linearly_with_batch(self):
        assert request_size_bytes(200) - request_size_bytes(100) == 100 * 52
        assert reply_size_bytes(10) < reply_size_bytes(300)

    def test_global_share_sized_by_certificate(self):
        registry = KeyRegistry()
        cert = make_certificate(registry)
        share = GlobalShare(1, 1, cert, forwarded=False)
        assert share.size_bytes() == cert.size_bytes() + 50

    def test_hotstuff_qc_linear_in_signatures(self):
        """No threshold signatures (§3): QC size grows with the quorum."""
        registry = KeyRegistry()
        sigs = tuple(
            registry.register(replica_id(1, i)).sign("v")
            for i in range(1, 8)
        )
        small_qc = HsQuorumCert("prepare", 0, 1, b"d", sigs[:5])
        big_qc = HsQuorumCert("prepare", 0, 1, b"d", sigs)
        assert big_qc.size_bytes() > small_qc.size_bytes()

    def test_ordered_request_sized_like_preprepare(self):
        request = make_request(100)
        ordered = OrderedRequest(0, 1, b"h", request)
        assert ordered.size_bytes() == 5400

    def test_spec_response_sized_like_reply(self):
        response = SpecResponse(0, 1, "b", b"h", b"r", replica_id(1, 1),
                                None, 100)
        assert response.size_bytes() == 1500

    def test_hs_proposal_includes_request_and_qc(self):
        request = make_request(10)
        registry = KeyRegistry()
        sig = registry.register(replica_id(1, 1)).sign("v")
        qc = HsQuorumCert("prepare", 0, 1, b"d", (sig,))
        bare = HsProposal("precommit", 0, 1, b"d", None, qc)
        loaded = HsProposal("prepare", 0, 1, b"d", request, None)
        assert loaded.size_bytes() > bare.size_bytes() > 250


class TestCommitCertificateVerification:
    def test_valid_certificate_verifies(self):
        registry = KeyRegistry()
        cert = make_certificate(registry, n=7)
        cert.verify(registry, quorum=5)

    def test_too_few_commits_rejected(self):
        registry = KeyRegistry()
        cert = make_certificate(registry, n=7)
        short = CommitCertificate(cert.cluster_id, cert.round_id, cert.view,
                                  cert.request, cert.commits[:3])
        with pytest.raises(InvalidCertificateError):
            short.verify(registry, quorum=5)

    def test_duplicate_signers_rejected(self):
        registry = KeyRegistry()
        cert = make_certificate(registry, n=7)
        dup = CommitCertificate(cert.cluster_id, cert.round_id, cert.view,
                                cert.request,
                                (cert.commits[0],) * len(cert.commits))
        with pytest.raises(InvalidCertificateError):
            dup.verify(registry, quorum=5)

    def test_forged_signature_rejected(self):
        registry = KeyRegistry()
        cert = make_certificate(registry, n=7)
        commit = cert.commits[0]
        forged_commit = Commit(commit.cluster_id, commit.view, commit.seq,
                               commit.digest, commit.replica,
                               cert.commits[1].signature)
        forged = CommitCertificate(cert.cluster_id, cert.round_id, cert.view,
                                   cert.request,
                                   (forged_commit,) + cert.commits[1:])
        with pytest.raises(InvalidCertificateError):
            forged.verify(registry, quorum=5)

    def test_swapped_request_rejected(self):
        """A Byzantine forwarder cannot swap the client request inside a
        certificate — the commit digests no longer match."""
        registry = KeyRegistry()
        cert = make_certificate(registry, n=7)
        other_request = ClientRequestBatch(
            "b2", cert.request.client,
            (Transaction("evil", "update", 1, "x"),), cert.request.signature,
        )
        tampered = CommitCertificate(cert.cluster_id, cert.round_id,
                                     cert.view, other_request, cert.commits)
        with pytest.raises(InvalidCertificateError):
            tampered.verify(registry, quorum=5)

    def test_foreign_cluster_commit_rejected(self):
        registry = KeyRegistry()
        cert = make_certificate(registry, n=7, cluster=1)
        foreign = make_certificate(registry, n=7, cluster=2)
        mixed = CommitCertificate(1, cert.round_id, cert.view, cert.request,
                                  cert.commits[:-1] + (foreign.commits[0],))
        with pytest.raises(InvalidCertificateError):
            mixed.verify(registry, quorum=5)

    def test_unsigned_commit_rejected(self):
        registry = KeyRegistry()
        cert = make_certificate(registry, n=7)
        commit = cert.commits[0]
        unsigned = Commit(commit.cluster_id, commit.view, commit.seq,
                          commit.digest, commit.replica, None)
        bad = CommitCertificate(cert.cluster_id, cert.round_id, cert.view,
                                cert.request,
                                (unsigned,) + cert.commits[1:])
        with pytest.raises(InvalidCertificateError):
            bad.verify(registry, quorum=5)


class TestRequestDigestCache:
    def test_digest_cached_and_stable(self):
        request = make_request(10)
        assert request.digest() is request.digest()
