"""Tests for digital signatures and the key registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.signatures import SIGNATURE_SIZE, KeyRegistry, Signature
from repro.errors import CryptoError, InvalidSignatureError
from repro.types import client_id, replica_id


@pytest.fixture
def registry():
    return KeyRegistry(seed=b"sig-tests")


class TestSigning:
    def test_sign_and_verify_roundtrip(self, registry):
        signer = registry.register(replica_id(1, 1))
        sig = signer.sign(("hello", 42))
        assert registry.verify(("hello", 42), sig)

    def test_verify_rejects_wrong_payload(self, registry):
        signer = registry.register(replica_id(1, 1))
        sig = signer.sign(("hello", 42))
        assert not registry.verify(("hello", 43), sig)

    def test_verify_rejects_unknown_signer(self, registry):
        sig = Signature(replica_id(9, 9), b"\x00" * 32)
        assert not registry.verify("anything", sig)

    def test_verify_rejects_tampered_tag(self, registry):
        signer = registry.register(replica_id(1, 1))
        sig = signer.sign("payload")
        forged = Signature(sig.signer, bytes(b ^ 1 for b in sig.tag))
        assert not registry.verify("payload", forged)

    def test_cannot_claim_another_identity(self, registry):
        """A signature made by one node never verifies as another's —
        the authenticated-communication assumption of §2.1."""
        a = registry.register(replica_id(1, 1))
        registry.register(replica_id(1, 2))
        sig = a.sign("payload")
        forged = Signature(replica_id(1, 2), sig.tag)
        assert not registry.verify("payload", forged)

    def test_signature_wire_size(self, registry):
        signer = registry.register(replica_id(1, 1))
        assert signer.sign("x").size_bytes() == SIGNATURE_SIZE

    def test_require_valid_raises(self, registry):
        signer = registry.register(replica_id(1, 1))
        sig = signer.sign("p")
        registry.require_valid("p", sig)  # no raise
        with pytest.raises(InvalidSignatureError):
            registry.require_valid("other", sig)

    def test_clients_can_sign_too(self, registry):
        signer = registry.register(client_id(2, 3))
        assert registry.verify("req", signer.sign("req"))


class TestKeyDerivation:
    def test_registration_is_idempotent(self, registry):
        s1 = registry.register(replica_id(1, 1))
        s2 = registry.register(replica_id(1, 1))
        assert s1.sign("x") == s2.sign("x")

    def test_keys_deterministic_per_seed(self):
        r1 = KeyRegistry(seed=b"a")
        r2 = KeyRegistry(seed=b"a")
        sig = r1.register(replica_id(1, 1)).sign("m")
        assert r2.verify("m", Signature(sig.signer, sig.tag)) is False
        # r2 has not registered the node yet; after registration the
        # derived key matches and verification succeeds.
        r2.register(replica_id(1, 1))
        assert r2.verify("m", sig)

    def test_different_seeds_different_keys(self):
        r1 = KeyRegistry(seed=b"a")
        r2 = KeyRegistry(seed=b"b")
        sig = r1.register(replica_id(1, 1)).sign("m")
        r2.register(replica_id(1, 1))
        assert not r2.verify("m", sig)

    def test_is_registered(self, registry):
        assert not registry.is_registered(replica_id(5, 5))
        registry.register(replica_id(5, 5))
        assert registry.is_registered(replica_id(5, 5))

    def test_fingerprint_requires_registration(self, registry):
        with pytest.raises(CryptoError):
            registry.signer_secret_fingerprint(replica_id(8, 8))
        registry.register(replica_id(8, 8))
        assert len(registry.signer_secret_fingerprint(replica_id(8, 8))) == 32

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_distinct_payloads_distinct_tags(self, a, b):
        registry = KeyRegistry(seed=b"prop")
        signer = registry.register(replica_id(1, 1))
        if a != b:
            assert signer.sign(a).tag != signer.sign(b).tag
