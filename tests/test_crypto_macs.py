"""Tests for pairwise message authentication codes."""

import pytest

from repro.crypto.macs import MAC_SIZE, Mac, MacAuthenticator
from repro.errors import InvalidMacError
from repro.types import replica_id

A = replica_id(1, 1)
B = replica_id(1, 2)
C = replica_id(2, 1)


@pytest.fixture
def auth_a():
    return MacAuthenticator(A)


@pytest.fixture
def auth_b():
    return MacAuthenticator(B)


class TestMacs:
    def test_tag_and_verify_roundtrip(self, auth_a, auth_b):
        mac = auth_a.tag(B, ("msg", 1))
        assert auth_b.verify(mac, ("msg", 1))

    def test_verify_rejects_wrong_payload(self, auth_a, auth_b):
        mac = auth_a.tag(B, "msg")
        assert not auth_b.verify(mac, "other")

    def test_mac_bound_to_receiver(self, auth_a):
        """A MAC for B does not convince C — MACs cannot be forwarded,
        which is why commit messages must be signed (§2.1)."""
        auth_c = MacAuthenticator(C)
        mac = auth_a.tag(B, "msg")
        assert not auth_c.verify(mac, "msg")

    def test_mac_bound_to_sender(self, auth_a, auth_b):
        auth_c = MacAuthenticator(C)
        mac = auth_c.tag(B, "msg")
        impersonated = Mac(A, mac.tag)
        assert not auth_b.verify(impersonated, "msg")

    def test_pairwise_key_symmetric(self, auth_a, auth_b):
        """Both directions of a pair use one shared key, but payload
        encoding includes direction, so tags differ per direction."""
        ab = auth_a.tag(B, "m")
        ba = auth_b.tag(A, "m")
        assert ab.tag != ba.tag
        assert auth_b.verify(ab, "m")
        assert auth_a.verify(ba, "m")

    def test_domain_separation(self):
        auth1 = MacAuthenticator(A, domain=b"d1")
        auth2 = MacAuthenticator(B, domain=b"d2")
        mac = auth1.tag(B, "m")
        assert not auth2.verify(mac, "m")

    def test_wire_size(self, auth_a):
        assert auth_a.tag(B, "m").size_bytes() == MAC_SIZE
        assert len(auth_a.tag(B, "m").tag) == MAC_SIZE

    def test_require_valid(self, auth_a, auth_b):
        mac = auth_a.tag(B, "m")
        auth_b.require_valid(mac, "m")
        with pytest.raises(InvalidMacError):
            auth_b.require_valid(mac, "x")

    def test_node_property(self, auth_a):
        assert auth_a.node == A
