"""Tests for replica recovery from a peer's ledger (paper §3)."""

import pytest

from repro.bench.deployment import Deployment
from repro.errors import TamperedLedgerError
from repro.ledger.block import Block, Transaction
from repro.ledger.recovery import (
    audit_ledger,
    rebuild_state,
    recover_from_peer,
)
from repro.types import replica_id

from .conftest import small_config


@pytest.fixture(scope="module")
def finished_deployment():
    deployment = Deployment(small_config("geobft", fast_crypto=True,
                                         duration=2.0, warmup=0.4))
    deployment.run()
    return deployment


class TestAudit:
    def test_honest_ledger_passes(self, finished_deployment):
        peer = finished_deployment.replicas[replica_id(1, 2)]
        height = audit_ledger(peer.ledger)
        assert height == peer.ledger.height > 0

    def test_tampered_ledger_rejected(self, finished_deployment):
        peer = finished_deployment.replicas[replica_id(1, 3)]
        original = peer.ledger.block(0)
        evil = Block(
            original.height, original.round_id, original.cluster_id,
            (Transaction("evil", "update", 0, "bad"),),
            original.batch_digest, original.certificate_digest,
            original.prev_hash,
        )
        peer.ledger.tamper_for_test(0, evil)
        try:
            with pytest.raises(TamperedLedgerError):
                audit_ledger(peer.ledger)
        finally:
            peer.ledger.tamper_for_test(0, original)


class TestRebuild:
    def test_state_matches_live_replicas(self, finished_deployment):
        deployment = finished_deployment
        peer = deployment.replicas[replica_id(2, 1)]
        store, engine = rebuild_state(
            peer.ledger, deployment.config.record_count)
        assert engine.executed_txns > 0
        # A live replica that executed the same number of rounds holds
        # the same state digest.
        twins = [r for r in deployment.replicas.values()
                 if r.ledger.height == peer.ledger.height]
        assert any(t.store.state_digest() == store.state_digest()
                   for t in twins)

    def test_recover_from_peer_end_to_end(self, finished_deployment):
        deployment = finished_deployment
        peer = deployment.replicas[replica_id(2, 2)]
        ledger, store = recover_from_peer(
            peer.ledger, deployment.config.record_count)
        assert ledger.height == peer.ledger.height
        assert ledger.head_hash == peer.ledger.head_hash
        assert store.state_digest() == peer.store.state_digest()
        ledger.verify(deep=True)

    def test_recovery_rejects_corrupt_source(self, finished_deployment):
        deployment = finished_deployment
        peer = deployment.replicas[replica_id(1, 4)]
        original = peer.ledger.block(1)
        evil = Block(
            original.height, original.round_id, original.cluster_id,
            original.batch, b"\x11" * 32, original.certificate_digest,
            original.prev_hash,
        )
        peer.ledger.tamper_for_test(1, evil)
        try:
            with pytest.raises(TamperedLedgerError):
                recover_from_peer(peer.ledger,
                                  deployment.config.record_count)
        finally:
            peer.ledger.tamper_for_test(1, original)
