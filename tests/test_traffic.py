"""Open-loop aggregate traffic: specs, sources, and the overload gate.

Covers the :class:`TrafficSpec` shorthand grammar and validation, the
seeded arrival processes (determinism and the chunked Poisson sampler),
the O(arrivals) scaling contract (a million modeled users costs the
same simulator work as a thousand at equal offered load), client-side
semantics over aggregates (admission rejection, deadline abandonment,
retry accounting), serial-vs-parallel digest parity, the promoted
``payment_network`` scenario, and the ``BENCH_overload.json`` store
interop (byte-identical regeneration, drift gates, parity checks).
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest

from repro.bench.deployment import (Deployment, ExperimentConfig,
                                    deployment_digest)
from repro.bench.parallel import run_parallel
from repro.bench.scenarios import apply_scenario, scenario_names
from repro.errors import ConfigurationError, WorkloadError
from repro.sweep import (ResultStore, campaign_names, get_campaign,
                         import_bench_overload, overload_run_id,
                         render_bench_overload)
from repro.sweep.campaigns import (OVERLOAD_FACTORS, OVERLOAD_SATURATION,
                                   OVERLOAD_USERS, PROTOCOLS)
from repro.sweep.store import (OVERLOAD_BENCHMARK,
                               compare_overload_baseline,
                               overload_digest_parity)
from repro.workload.payment import DEFAULT_ACCOUNTS, PaymentWorkload
from repro.workload.traffic import (TRAFFIC_PROCESSES, TrafficSpec,
                                    _poisson, split_users)

SMALL = dict(protocol="geobft", num_clusters=2, replicas_per_cluster=4,
             batch_size=5, duration=1.2, warmup=0.3, seed=2,
             record_count=500, fast_crypto=True)


def traffic_config(spec: TrafficSpec, **overrides) -> ExperimentConfig:
    return ExperimentConfig(**{**SMALL, **overrides}, traffic=spec)


def steady_spec(**overrides) -> TrafficSpec:
    """A constant-rate spec fast enough for unit tests."""
    params = dict(process="constant", users=1_000, rate_per_user=0.5,
                  tick=0.05, deadline=0.8, max_retries=1,
                  retry_backoff=0.25, window=2_000)
    params.update(overrides)
    return TrafficSpec(**params)


# ---------------------------------------------------------------------------
# Spec grammar and validation
# ---------------------------------------------------------------------------
class TestTrafficSpec:
    def test_parse_shorthand_with_aliases(self):
        spec = TrafficSpec.parse(
            "poisson:users=1000000,rate=0.5,deadline=1.5,retries=3,"
            "backoff=0.2,window=50000")
        assert spec.process == "poisson"
        assert spec.users == 1_000_000
        assert spec.rate_per_user == 0.5
        assert spec.deadline == 1.5
        assert spec.max_retries == 3
        assert spec.retry_backoff == 0.2
        assert spec.window == 50_000

    def test_parse_process_only(self):
        assert TrafficSpec.parse("constant").process == "constant"

    def test_parse_rejects_unknown_process(self):
        with pytest.raises(ConfigurationError, match="unknown traffic"):
            TrafficSpec.parse("bursty:users=10")

    def test_parse_rejects_malformed_pair(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            TrafficSpec.parse("poisson:users")

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            TrafficSpec.parse("poisson:velocity=3")

    def test_parse_rejects_bad_value(self):
        with pytest.raises(ConfigurationError, match="bad value"):
            TrafficSpec.parse("poisson:users=many")

    @pytest.mark.parametrize("field,value", [
        ("users", 0), ("rate_per_user", 0.0), ("tick", 0.0),
        ("deadline", 0.0), ("max_retries", -1), ("retry_backoff", 0.0),
        ("window", 0), ("period", 0.0), ("amplitude", 1.5),
        ("flash_factor", 0.0)])
    def test_field_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            steady_spec(**{field: value})

    def test_flash_window_must_be_ordered(self):
        with pytest.raises(ConfigurationError, match="flash_until"):
            TrafficSpec(process="flash", flash_at=2.0, flash_until=1.0)

    def test_from_value_coercions(self):
        assert TrafficSpec.from_value(None) is None
        assert TrafficSpec.from_value("") is None
        spec = steady_spec()
        assert TrafficSpec.from_value(spec) is spec
        assert TrafficSpec.from_value("poisson:users=5").users == 5
        assert TrafficSpec.from_value({"process": "constant"}).process \
            == "constant"
        with pytest.raises(ConfigurationError, match="traffic must be"):
            TrafficSpec.from_value(42)

    def test_rate_curves(self):
        flat = steady_spec()
        assert flat.rate_multiplier(3.7) == 1.0
        assert flat.offered_txn_s(0.0) == 1_000 * 0.5
        diurnal = TrafficSpec(process="diurnal", period=20.0,
                              amplitude=0.5)
        assert diurnal.rate_multiplier(5.0) == pytest.approx(1.5)
        assert diurnal.rate_multiplier(15.0) == pytest.approx(0.5)
        flash = TrafficSpec(process="flash", flash_at=1.0,
                            flash_until=2.0, flash_factor=4.0)
        assert flash.rate_multiplier(0.5) == 1.0
        assert flash.rate_multiplier(1.0) == 4.0
        assert flash.rate_multiplier(2.0) == 1.0

    def test_split_users_is_even_and_total_preserving(self):
        assert split_users(10, 3) == [4, 3, 3]
        assert sum(split_users(1_000_001, 7)) == 1_000_001

    def test_processes_tuple_is_the_contract(self):
        assert TRAFFIC_PROCESSES == ("constant", "poisson", "diurnal",
                                     "flash")


class TestPoisson:
    def test_seeded_draws_are_deterministic(self):
        a = [_poisson(random.Random(7), lam) for lam in (0.5, 3.0, 900.0)]
        b = [_poisson(random.Random(7), lam) for lam in (0.5, 3.0, 900.0)]
        assert a == b

    def test_zero_rate_draws_zero(self):
        assert _poisson(random.Random(1), 0.0) == 0

    def test_chunked_large_lambda_has_sane_mean(self):
        rng = random.Random(3)
        draws = [_poisson(rng, 2_000.0) for _ in range(50)]
        mean = sum(draws) / len(draws)
        assert 1_900 < mean < 2_100


# ---------------------------------------------------------------------------
# The source inside a deployment
# ---------------------------------------------------------------------------
class TestOpenLoopRuns:
    def run_once(self, spec: TrafficSpec, **overrides):
        deployment = Deployment(traffic_config(spec, **overrides))
        result = deployment.run()
        return deployment, result

    def test_rerun_is_bit_identical(self):
        spec = steady_spec(process="poisson")
        dep_a, res_a = self.run_once(spec)
        dep_b, res_b = self.run_once(spec)
        assert deployment_digest(dep_a, res_a) \
            == deployment_digest(dep_b, res_b)
        assert res_a.traffic == res_b.traffic
        assert res_a.traffic is not None
        assert res_a.traffic["goodput_txn_s"] > 0

    def test_events_scale_with_arrivals_not_users(self):
        # Same offered load (500 txn/s), three orders of magnitude apart
        # in population: identical simulator work and committed txns.
        small = steady_spec(users=1_000, rate_per_user=0.5)
        huge = steady_spec(users=1_000_000, rate_per_user=0.0005)
        dep_a, res_a = self.run_once(small)
        dep_b, res_b = self.run_once(huge)
        assert dep_a.sim.events_processed == dep_b.sim.events_processed
        assert res_a.completed_txns == res_b.completed_txns
        assert res_b.traffic["modeled_users"] == 1_000_000

    def test_closed_loop_results_omit_traffic(self):
        result = Deployment(ExperimentConfig(**SMALL)).run()
        assert result.traffic is None
        assert "traffic" not in result.to_dict()

    def test_serial_parallel_digest_parity(self):
        spec = steady_spec(process="poisson")
        serial_dep, serial_res = self.run_once(spec)
        parallel = run_parallel(traffic_config(spec, workers=2))
        assert parallel.digest == deployment_digest(serial_dep, serial_res)
        assert parallel.result.traffic == serial_res.traffic

    def test_admission_window_rejects_overload(self):
        spec = steady_spec(rate_per_user=2.0, window=20, max_retries=0)
        _, result = self.run_once(spec)
        assert result.traffic["rejected_txns"] > 0

    def test_deadline_abandons_when_retries_exhausted(self):
        spec = steady_spec(deadline=0.01, max_retries=0)
        _, result = self.run_once(spec)
        assert result.traffic["abandoned_txns"] > 0
        assert result.traffic["abandonment_rate"] > 0

    def test_retry_accounting(self):
        spec = steady_spec(deadline=0.01, max_retries=2,
                           retry_backoff=0.05)
        _, result = self.run_once(spec)
        assert result.traffic["retried_batches"] > 0

    @pytest.mark.parametrize("protocol", ["pbft", "zyzzyva", "hotstuff"])
    def test_other_protocols_complete_under_traffic(self, protocol):
        clusters = 1 if protocol != "geobft" else 2
        spec = steady_spec()
        _, result = self.run_once(spec, protocol=protocol,
                                  num_clusters=clusters)
        assert result.safety_ok
        assert result.completed_txns > 0
        assert result.traffic["goodput_txn_s"] > 0


# ---------------------------------------------------------------------------
# Payment workload and scenario
# ---------------------------------------------------------------------------
class TestPaymentNetwork:
    def test_workload_is_seeded_and_bounded(self):
        a = PaymentWorkload("iowa", seed=7, accounts=50)
        b = PaymentWorkload("iowa", seed=7, accounts=50)
        batch_a = a.next_batch(10, prefix="x-")
        batch_b = b.next_batch(10, prefix="x-")
        assert [t.txn_id for t in batch_a] == [t.txn_id for t in batch_b]
        assert [t.value for t in batch_a] == [t.value for t in batch_b]
        assert a.generated_txns == 10
        for txn in batch_a:
            assert txn.op == "modify"
            assert txn.value.startswith("iowa->")
        with pytest.raises(WorkloadError):
            PaymentWorkload("iowa", seed=1, accounts=0)

    def test_scenario_is_registered_and_applies(self):
        assert "payment_network" in scenario_names()
        deployment = Deployment(ExperimentConfig(**SMALL))
        apply_scenario(deployment, "payment_network")
        assert deployment.clients
        for client in deployment.clients:
            assert isinstance(client._workload, PaymentWorkload)
            assert client._workload.accounts \
                <= min(DEFAULT_ACCOUNTS, SMALL["record_count"])

    def test_scenario_run_is_deterministic(self):
        def run():
            deployment = Deployment(ExperimentConfig(**SMALL))
            apply_scenario(deployment, "payment_network")
            result = deployment.run()
            return deployment, result

        dep_a, res_a = run()
        dep_b, res_b = run()
        assert res_a.safety_ok and res_a.completed_txns > 0
        assert deployment_digest(dep_a, res_a) \
            == deployment_digest(dep_b, res_b)


# ---------------------------------------------------------------------------
# BENCH_overload.json interop
# ---------------------------------------------------------------------------
def overload_payload(**host_overrides):
    host = {"calibration_ops_per_s": 1_000_000, "cpus": 4,
            "python": "test"}
    host.update(host_overrides)
    point = {"abandonment_rate": 0.0, "digest": "d" * 64, "events": 5_000,
             "events_per_s": 50_000, "goodput_txn_s": 120_000,
             "offered_txn_s": 125_000, "p50_latency_s": 0.11,
             "p95_latency_s": 0.2, "p99_latency_s": 0.3,
             "protocol": "geobft", "users": 1_200_000, "wall_s": 0.1,
             "workers": 1, "workload": "ycsb", "x": 1.0}
    wide = dict(point, workers=2, events_per_s=20_000)
    return {"schema": "bench-overload/1",
            "benchmark": OVERLOAD_BENCHMARK,
            "host": host, "points": [point, wide]}


class TestOverloadInterop:
    def test_run_id_forms(self):
        assert overload_run_id("geobft", 2.0) == "overload/geobft/x2/w1"
        assert overload_run_id("geobft", 0.5, 2) \
            == "overload/geobft/x0.5/w2"
        assert overload_run_id("geobft", 2.0, 1, "payment") \
            == "overload/payment-geobft-x2"

    def test_baseline_regenerates_byte_identically(self, tmp_path):
        path = tmp_path / "BENCH_overload.json"
        original = json.dumps(overload_payload(), indent=1,
                              sort_keys=True) + "\n"
        path.write_text(original)
        store = ResultStore(None)
        store.add_all(import_bench_overload(str(path)))
        rendered = render_bench_overload(store.query(campaign="overload"))
        assert rendered == original

    def test_import_rejects_wrong_schema(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "bench-overload/999"}))
        with pytest.raises(ConfigurationError, match="schema"):
            import_bench_overload(str(bogus))

    def test_render_requires_records(self):
        with pytest.raises(ConfigurationError, match="no overload"):
            render_bench_overload([])

    def test_compare_flags_digest_drift(self, tmp_path):
        baseline = overload_payload()
        path = tmp_path / "b.json"
        path.write_text(json.dumps(baseline))
        records = import_bench_overload(str(path))
        records[0]["bench"] = dict(records[0]["bench"], digest="e" * 64)
        failures = compare_overload_baseline(records, 1_000_000, baseline)
        assert len(failures) == 1
        assert "digest mismatch" in failures[0]

    def test_compare_flags_rate_regression(self, tmp_path):
        baseline = overload_payload()
        path = tmp_path / "b.json"
        path.write_text(json.dumps(baseline))
        records = import_bench_overload(str(path))
        records[0]["bench"] = dict(records[0]["bench"], events_per_s=100)
        failures = compare_overload_baseline(records, 1_000_000, baseline)
        assert len(failures) == 1
        assert "regressed" in failures[0]

    def test_compare_skips_rate_gate_on_oversubscribed_rows(self,
                                                            tmp_path):
        # Baseline measured on a 1-cpu host: its workers=2 wall times are
        # time-sliced, so only the digest gate applies to that row.
        baseline = overload_payload(cpus=1)
        path = tmp_path / "b.json"
        path.write_text(json.dumps(baseline))
        records = import_bench_overload(str(path))
        wide = next(r for r in records if r["bench"]["workers"] == 2)
        wide["bench"] = dict(wide["bench"], events_per_s=100)
        assert compare_overload_baseline(records, 1_000_000,
                                         baseline) == []
        wide["bench"] = dict(wide["bench"], digest="e" * 64)
        failures = compare_overload_baseline(records, 1_000_000, baseline)
        assert len(failures) == 1 and "digest" in failures[0]

    def test_digest_parity_groups_by_point(self, tmp_path):
        baseline = overload_payload()
        path = tmp_path / "b.json"
        path.write_text(json.dumps(baseline))
        records = import_bench_overload(str(path))
        assert overload_digest_parity(records) == []
        records[1]["bench"] = dict(records[1]["bench"], digest="e" * 64)
        failures = overload_digest_parity(records)
        assert len(failures) == 1
        assert "divergence" in failures[0]


# ---------------------------------------------------------------------------
# Campaign registration
# ---------------------------------------------------------------------------
class TestCampaigns:
    def test_overload_and_chaos_registered(self):
        names = campaign_names()
        assert "overload" in names
        assert "chaos" in names

    def test_overload_campaign_shape(self):
        campaign = get_campaign("overload")
        ids = campaign.run_ids()
        for protocol in PROTOCOLS:
            assert protocol in OVERLOAD_SATURATION
            for x in OVERLOAD_FACTORS:
                assert overload_run_id(protocol, x) in ids
        # geobft gets a parallel twin per factor, gated on its serial run.
        for spec in campaign.runs:
            assert spec.config.traffic is not None
            assert spec.config.traffic.users == OVERLOAD_USERS
            if spec.config.workers > 1:
                assert spec.depends_on
        assert overload_run_id("geobft", 2.0, 1, "payment") in ids
        payment = next(s for s in campaign.runs
                       if s.tags.get("workload") == "payment")
        assert payment.scenario == "payment_network"
        assert campaign.reports[0].filename == "BENCH_overload.json"

    def test_chaos_campaign_covers_every_protocol(self):
        campaign = get_campaign("chaos")
        assert len(campaign.runs) == len(PROTOCOLS)
        for spec in campaign.runs:
            assert spec.scenario == "chaos_smoke"
            assert spec.config.duration == 10.0
        assert campaign.reports[0].filename == "chaos_audit.txt"
