"""The sweep package: campaign model, result store, and scheduler.

Covers the DAG semantics (ordering, failure propagation, cached hits),
the store's JSONL + SQLite round trip, the byte-identical
``BENCH_scale.json`` regeneration contract, the worker-budget governor,
the campaign registry, and campaign-vs-bespoke parity for a Figure 10
point.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.deployment import Deployment
from repro.errors import ConfigurationError
from repro.sweep import (
    Campaign,
    ResultStore,
    RunSpec,
    WorkerBudget,
    campaign_names,
    expand_grid,
    get_campaign,
    record_series,
    register_campaign,
    result_from_record,
    run_campaign,
)
from repro.sweep.campaigns import point_config
from repro.sweep.store import import_bench_scale, render_bench_scale

BASELINE = os.path.join(os.path.dirname(__file__), "..", "BENCH_scale.json")

#: A pre-measured host block so tests skip the ~1 s calibration loop.
HOST = {"calibration_ops_per_s": 1_000_000, "cpus": 1, "python": "test"}


def tiny_config(protocol: str = "geobft", **overrides):
    """A fast run for scheduler tests (sub-second host wall time)."""
    return point_config(protocol, 2, 4, batch_size=5, duration=1.0,
                        warmup=0.25, clients_per_cluster=1,
                        client_outstanding=2, **overrides)


def tiny_campaign(name: str = "tiny", **kwargs) -> Campaign:
    return Campaign(
        name=name,
        description="scheduler test campaign",
        runs=(RunSpec(run_id="a", config=tiny_config()),
              RunSpec(run_id="b", config=tiny_config(seed=5),
                      depends_on=("a",))),
        **kwargs)


class TestModel:
    def test_duplicate_run_id_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate run id"):
            Campaign(name="x", description="", runs=(
                RunSpec(run_id="a", config=tiny_config()),
                RunSpec(run_id="a", config=tiny_config(seed=5))))

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown run"):
            Campaign(name="x", description="", runs=(
                RunSpec(run_id="a", config=tiny_config(),
                        depends_on=("ghost",)),))

    def test_cycle_rejected(self):
        with pytest.raises(ConfigurationError, match="cycle"):
            Campaign(name="x", description="", runs=(
                RunSpec(run_id="a", config=tiny_config(),
                        depends_on=("b",)),
                RunSpec(run_id="b", config=tiny_config(seed=5),
                        depends_on=("a",))))

    def test_toposort_is_stable_and_dependency_respecting(self):
        campaign = Campaign(name="x", description="", runs=(
            RunSpec(run_id="late", config=tiny_config(),
                    depends_on=("early",)),
            RunSpec(run_id="free", config=tiny_config(seed=5)),
            RunSpec(run_id="early", config=tiny_config(seed=7))))
        order = [spec.run_id for spec in campaign.toposort()]
        assert order == ["free", "early", "late"]

    def test_subset_closes_over_dependencies(self):
        campaign = tiny_campaign()
        sub = campaign.subset(lambda spec: spec.run_id == "b")
        assert sub.run_ids() == ("a", "b")

    def test_filtered_unknown_pattern_lists_ids(self):
        with pytest.raises(ConfigurationError, match="no run id matches"):
            tiny_campaign().filtered("zzz")

    def test_key_is_stable_and_config_sensitive(self):
        spec = RunSpec(run_id="a", config=tiny_config())
        same = RunSpec(run_id="renamed", config=tiny_config(),
                       tags={"any": "tag"})
        other = RunSpec(run_id="a", config=tiny_config(seed=5))
        # The key hashes the *experiment*, not its label: ids and tags
        # are presentation, the config is identity.
        assert spec.key() == same.key()
        assert spec.key() != other.key()
        assert spec.key() != RunSpec(run_id="a", config=tiny_config(),
                                     scenario="crash-backup").key()

    def test_expand_grid_first_axis_slowest(self):
        grid = list(expand_grid(p=("x", "y"), n=(1, 2)))
        assert grid == [{"p": "x", "n": 1}, {"p": "x", "n": 2},
                        {"p": "y", "n": 1}, {"p": "y", "n": 2}]


class TestWorkerBudget:
    def test_budget_math(self):
        budget = WorkerBudget(jobs=2, cpu_budget=3)
        narrow = RunSpec(run_id="narrow", config=tiny_config())
        wide = RunSpec(run_id="wide", config=tiny_config(workers=2))
        assert budget.demand(narrow) == 1
        assert budget.demand(wide) == 2
        assert budget.admits(wide)
        budget.acquire(wide)
        # 2 of 3 slots used: another wide run must wait, narrow fits.
        assert not budget.admits(wide)
        assert budget.admits(narrow)
        budget.acquire(narrow)
        assert not budget.admits(narrow)  # jobs cap
        budget.release(wide)
        budget.release(narrow)
        assert budget.running == 0 and budget.used_slots == 0

    def test_wide_run_never_starves(self):
        budget = WorkerBudget(jobs=4, cpu_budget=1)
        wide = RunSpec(run_id="wide", config=tiny_config(workers=2))
        assert budget.demand(wide) == 1  # capped at the budget
        assert budget.admits(wide)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WorkerBudget(jobs=0)


class TestStore:
    RECORD = {"key": "k1", "campaign": "c", "run_id": "r1",
              "config": {"protocol": "geobft", "num_clusters": 2,
                         "workers": 1},
              "scenario": "none", "status": "ok", "digest": "d1"}

    def test_memory_store_round_trip(self):
        store = ResultStore(None)
        store.add(self.RECORD)
        assert store.get("k1")["run_id"] == "r1"
        assert store.has("k1")
        assert not store.has("missing")
        assert store.query(protocol="geobft")[0]["key"] == "k1"
        assert store.query(protocol="pbft") == []
        assert store.campaigns() == ["c"]

    def test_unknown_filter_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown store"):
            ResultStore(None).query(flavour="mint")

    def test_record_requires_key(self):
        with pytest.raises(ConfigurationError, match="key"):
            ResultStore(None).add({"run_id": "r1"})

    def test_disk_store_round_trip_and_reindex(self, tmp_path):
        path = str(tmp_path / "store")
        with ResultStore(path) as store:
            store.add(self.RECORD)
            store.add(dict(self.RECORD, key="k2", run_id="r2",
                           status="failed"))
        # Reopen: the index answers without re-reading everything.
        with ResultStore(path) as store:
            assert store.has("k1")
            assert not store.has("k2")  # failed records are not hits
            assert [r["run_id"] for r in store.query(campaign="c")] \
                == ["r1", "r2"]
        # Deleting the SQLite index is safe: it rebuilds from JSONL.
        os.remove(os.path.join(path, "index.sqlite"))
        with ResultStore(path) as store:
            assert store.has("k1")
            assert store.count(status="ok") == 1

    def test_re_add_overwrites_key(self, tmp_path):
        with ResultStore(str(tmp_path / "store")) as store:
            store.add(dict(self.RECORD, status="failed"))
            assert not store.has("k1")
            store.add(dict(self.RECORD))
            assert store.has("k1")
            assert len(store.query(campaign="c")) == 1


class TestBenchScaleInterop:
    def test_baseline_regenerates_byte_identically(self):
        with open(BASELINE, "r", encoding="utf-8") as fh:
            original = fh.read()
        store = ResultStore(None)
        store.add_all(import_bench_scale(BASELINE))
        rendered = render_bench_scale(store.query(campaign="scale"))
        assert rendered == original

    def test_import_rejects_wrong_schema(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "bench-scale/999"}))
        with pytest.raises(ConfigurationError, match="schema"):
            import_bench_scale(str(bogus))

    def test_render_requires_records(self):
        with pytest.raises(ConfigurationError, match="no scale records"):
            render_bench_scale([])


class TestScheduler:
    def dag_campaign(self) -> Campaign:
        # "up" fails at execution time (unknown scenario), so "down"
        # must be skipped while the independent "free" run completes.
        return Campaign(name="dag", description="", runs=(
            RunSpec(run_id="up", config=tiny_config(),
                    scenario="no-such-scenario"),
            RunSpec(run_id="down", config=tiny_config(seed=5),
                    depends_on=("up",)),
            RunSpec(run_id="free", config=tiny_config(seed=7))))

    def test_failure_skips_transitive_dependants(self):
        outcome = run_campaign(self.dag_campaign(), host=HOST)
        assert outcome.failed == ["up"]
        assert outcome.skipped == ["down"]
        assert [r["run_id"] for r in outcome.records] == ["free"]
        assert not outcome.ok
        assert "1 skipped" in outcome.summary()

    def test_cached_hits_skip_execution(self, tmp_path):
        campaign = tiny_campaign()
        with ResultStore(str(tmp_path / "store")) as store:
            first = run_campaign(campaign, store=store, host=HOST)
            assert first.ok
            assert [r["run_id"] for r in first.executed] == ["a", "b"]
            assert first.cached == []
            second = run_campaign(campaign, store=store, host=HOST)
        assert second.ok
        assert second.executed == []
        assert [r["run_id"] for r in second.cached] == ["a", "b"]
        # Identical records either way, in campaign order.
        assert [r["digest"] for r in second.records] \
            == [r["digest"] for r in first.records]
        # --rerun forces re-execution despite the warm store.
        with ResultStore(str(tmp_path / "store")) as store:
            third = run_campaign(campaign, store=store, host=HOST,
                                 rerun=True)
        assert [r["run_id"] for r in third.executed] == ["a", "b"]

    def test_record_carries_schema_and_host(self):
        outcome = run_campaign(
            Campaign(name="one", description="", runs=(
                RunSpec(run_id="a", config=tiny_config(),
                        tags={"figure": "adhoc", "protocol": "geobft",
                              "x": 2, "xi": 0}),)),
            host=HOST)
        record = outcome.records[0]
        assert record["schema"] == "repro-sweep/1"
        assert record["result"]["schema"] == "repro-result/1"
        assert record["host"] == HOST
        assert record["key"] == RunSpec(
            run_id="a", config=tiny_config()).key()
        # The record round-trips into a real ExperimentResult and
        # pivots into figure series.
        result = result_from_record(record)
        assert result.throughput_txn_s >= 0
        xs, series = record_series(outcome.records, "throughput_txn_s")
        assert xs == [2]
        assert series["geobft"] == [record["result"]["throughput_txn_s"]]

    def test_report_failure_is_recorded_not_raised(self):
        from repro.sweep import ReportSpec

        def explode(records):
            raise ValueError("no points")

        campaign = Campaign(
            name="r", description="", runs=(),
            reports=(ReportSpec("boom", "boom.txt", explode),))
        outcome = run_campaign(campaign, host=HOST)
        assert outcome.failed == ["report:boom"]
        assert "boom" in outcome.artifacts["boom"]
        # On a deliberately filtered (partial) campaign, a report whose
        # points were filtered away is dropped, not failed.
        partial = run_campaign(campaign, host=HOST, partial=True)
        assert partial.ok
        assert partial.artifacts == {}


class TestRegistry:
    def test_builtin_campaigns_registered(self):
        names = campaign_names()
        for name in ("fig10", "fig11", "fig12", "fig13", "table1",
                     "table2", "scale", "ci-smoke", "paper"):
            assert name in names

    def test_unknown_campaign_lists_registered(self):
        with pytest.raises(ConfigurationError, match="unknown campaign"):
            get_campaign("fig99")

    def test_duplicate_registration_rejected(self):
        factory = lambda: tiny_campaign(name="dup-test")  # noqa: E731
        register_campaign("dup-test", factory)
        try:
            with pytest.raises(ConfigurationError,
                               match="already registered"):
                register_campaign("dup-test", factory)
            register_campaign("dup-test", factory, replace=True)
        finally:
            from repro.sweep import campaigns
            campaigns._CAMPAIGNS.pop("dup-test", None)

    def test_factory_name_mismatch_rejected(self):
        from repro.sweep import campaigns
        register_campaign("misnamed", lambda: tiny_campaign(name="other"))
        try:
            with pytest.raises(ConfigurationError, match="named"):
                get_campaign("misnamed")
        finally:
            campaigns._CAMPAIGNS.pop("misnamed", None)

    def test_dag_dependencies_inside_builtin_campaigns(self):
        scale = get_campaign("scale")
        parallel_runs = [spec for spec in scale.runs
                         if spec.config.workers > 1]
        assert parallel_runs
        for spec in parallel_runs:
            assert spec.depends_on  # parallel point waits on serial twin
        fig12 = get_campaign("fig12")
        primary = [spec for spec in fig12.runs
                   if "primary" in spec.run_id]
        assert primary
        for spec in primary:
            assert spec.depends_on


class TestParity:
    def test_fig10_point_matches_bespoke_run(self, monkeypatch):
        # The migrated campaign must reproduce the bespoke script's
        # numbers exactly: same config -> same simulated universe.
        monkeypatch.setenv("REPRO_BENCH_DURATION", "0.6")
        campaign = get_campaign("fig10").filtered("geobft/z2")
        assert campaign.run_ids() == ("fig10/geobft/z2",)
        spec = campaign.runs[0]
        bespoke = Deployment(spec.config).run()
        outcome = run_campaign(campaign, host=HOST)
        assert outcome.ok, outcome.summary()
        record = outcome.records[0]
        assert record["result"]["throughput_txn_s"] \
            == bespoke.throughput_txn_s
        assert record["result"]["avg_latency_s"] == bespoke.avg_latency_s
        assert record["result"]["completed_txns"] == bespoke.completed_txns
