"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "geobft"
        assert args.clusters == 2

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "raft"])

    def test_compare_protocol_list(self):
        args = build_parser().parse_args(
            ["compare", "--protocols", "geobft,pbft"])
        assert args.protocols == ["geobft", "pbft"]


class TestCommands:
    def test_table1_prints_matrix(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "oregon" in out and "sydney" in out
        assert "270" in out  # Belgium <-> Sydney RTT

    def test_table2_prints_complexity(self, capsys):
        assert main(["table2", "-z", "4", "-n", "7"]) == 0
        out = capsys.readouterr().out
        assert "geobft" in out and "hotstuff" in out
        assert "z=4, n=7" in out

    def test_run_executes_experiment(self, capsys):
        code = main([
            "run", "-p", "geobft", "-z", "2", "-n", "4", "-b", "5",
            "-d", "1.5", "-w", "0.3", "--clients", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "geobft" in out
        assert "safety=ok" in out

    def test_run_with_scenario(self, capsys):
        code = main([
            "run", "-p", "geobft", "-z", "2", "-n", "4", "-b", "5",
            "-d", "2.0", "-w", "0.3", "--clients", "1",
            "--scenario", "one_backup",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "crashing" in out

    def test_compare_two_protocols(self, capsys):
        code = main([
            "compare", "--protocols", "geobft,pbft", "-z", "2", "-n", "4",
            "-b", "5", "-d", "1.5", "-w", "0.3", "--clients", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "geobft" in out and "pbft" in out
        assert "tput (txn/s)" in out


class TestObservability:
    def test_run_reports_percentiles_and_caches(self, capsys):
        code = main([
            "run", "-p", "geobft", "-z", "2", "-n", "4", "-b", "5",
            "-d", "1.5", "-w", "0.3", "--clients", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p95" in out and "p99" in out
        assert "offered load" in out
        assert "cache telemetry" in out

    def test_run_trace_out_writes_chrome_trace(self, capsys, tmp_path):
        import json
        trace = tmp_path / "out.json"
        code = main([
            "run", "-p", "geobft", "-z", "2", "-n", "4", "-b", "5",
            "-d", "1.5", "-w", "0.3", "--clients", "1",
            "--trace-out", str(trace),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "consensus phase durations" in out
        assert "global share latency" in out
        document = json.loads(trace.read_text())
        assert any(e.get("cat") == "lifecycle"
                   for e in document["traceEvents"])

    def test_trace_command_asserts_determinism(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        code = main([
            "trace", "-p", "geobft", "-z", "2", "-n", "4", "-b", "5",
            "-d", "1.5", "-w", "0.3", "--clients", "1",
            "--out", str(trace), "--jsonl", str(jsonl),
            "--assert-determinism",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "determinism: ok" in out
        assert "runtime telemetry" in out
        assert trace.exists() and jsonl.exists()

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.trace_out == "trace.json"
        assert not args.assert_determinism
        assert args.summary == ""

    def test_trace_legacy_aliases(self):
        # --out/--jsonl remain aliases of --trace-out/--trace-jsonl so
        # historical invocations (CI, docs) keep working.
        args = build_parser().parse_args(
            ["trace", "--out", "a.json", "--jsonl", "b.jsonl"])
        assert args.trace_out == "a.json"
        assert args.trace_jsonl == "b.jsonl"

    def test_run_workers_writes_merged_trace(self, capsys, tmp_path):
        # Tracing no longer forces the serial engine: a --workers run
        # exports the merged trace plus the engine telemetry track.
        trace = tmp_path / "out.json"
        jsonl = tmp_path / "out.jsonl"
        code = main([
            "run", "-p", "geobft", "-z", "2", "-n", "4", "-b", "5",
            "-d", "1.5", "-w", "0.3", "--clients", "1", "--workers", "2",
            "--trace-out", str(trace), "--trace-jsonl", str(jsonl),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serial fallback" not in out
        assert "parallel engine (per worker)" in out
        assert "consensus phase durations" in out
        document = json.loads(trace.read_text())
        assert any(e.get("cat") == "lifecycle"
                   for e in document["traceEvents"])
        assert any(e.get("cat") == "engine"
                   for e in document["traceEvents"])
        assert jsonl.exists()

    def test_run_workers_json_carries_engine_report(self, capsys):
        code = main([
            "run", "-p", "geobft", "-z", "2", "-n", "4", "-b", "5",
            "-d", "1.0", "-w", "0.25", "--clients", "1",
            "--workers", "2", "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["engine"]["workers"] == 2
        assert len(doc["engine"]["per_worker"]) == 2
        assert doc["engine"]["windows"] > 0

    def test_trace_summary_offline(self, capsys, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        code = main([
            "run", "-p", "geobft", "-z", "2", "-n", "4", "-b", "5",
            "-d", "1.5", "-w", "0.3", "--clients", "1", "--workers", "2",
            "--trace-jsonl", str(jsonl),
        ])
        assert code == 0
        capsys.readouterr()  # discard the run's own report
        assert main(["trace", "--summary", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert f"trace summary of {jsonl}" in out
        assert "committed rounds" in out
        assert "consensus phase durations" in out
        assert "parallel engine (per worker)" in out

    def test_trace_summary_missing_file_errors(self, capsys, tmp_path):
        code = main(["trace", "--summary", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot load" in capsys.readouterr().err


class TestTrafficFlag:
    def test_run_with_link_report(self, capsys):
        code = main([
            "run", "-p", "pbft", "-z", "2", "-n", "4", "-b", "5",
            "-d", "1.2", "-w", "0.3", "--clients", "1", "--link-report",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-link traffic" in out
        assert "oregon" in out

    def test_run_with_open_loop_traffic(self, capsys):
        code = main([
            "run", "-p", "pbft", "-z", "2", "-n", "4", "-b", "5",
            "-d", "1.2", "-w", "0.3",
            "--traffic", "poisson:users=1000,rate=0.05",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "open-loop:" in out
        assert "1,000" in out


class TestChaosFlags:
    def _timeline_file(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps({
            "name": "cli-test",
            "faults": [
                {"kind": "crash", "targets": "backup:1", "at": 0.5},
            ],
        }))
        return str(path)

    def test_shared_args_on_every_experiment_command(self):
        for command in ("run", "trace", "compare"):
            args = build_parser().parse_args([command])
            assert args.scenario == "none"
            assert args.faults == ""
            assert args.fail_at == 0.0

    def test_run_with_faults_file(self, capsys, tmp_path):
        code = main([
            "run", "-p", "geobft", "-z", "2", "-n", "4", "-b", "5",
            "-d", "2.0", "-w", "0.3", "--clients", "1",
            "--faults", self._timeline_file(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault timeline 'cli-test'" in out
        assert "safety:   ok" in out

    def test_run_json_output(self, capsys):
        code = main([
            "run", "-p", "pbft", "-z", "2", "-n", "4", "-b", "5",
            "-d", "1.5", "-w", "0.3", "--clients", "1", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["protocol"] == "pbft"
        assert data["safety_ok"] is True and data["liveness_ok"] is True

    def test_unknown_scenario_clean_error(self, capsys):
        code = main([
            "run", "-d", "1.0", "-w", "0.3", "--scenario", "meteor",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err

    def test_missing_faults_file_clean_error(self, capsys):
        code = main([
            "run", "-d", "1.0", "-w", "0.3", "--faults", "/nope.json",
        ])
        assert code == 2
        assert "cannot read fault timeline" in capsys.readouterr().err

    def test_compare_with_faults(self, capsys, tmp_path):
        code = main([
            "compare", "--protocols", "geobft,pbft", "-z", "2",
            "-n", "4", "-b", "5", "-d", "1.5", "-w", "0.3",
            "--clients", "1", "--faults", self._timeline_file(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "geobft" in out and "pbft" in out
