"""Tests for the PBFT engine and replica: normal case, checkpoints,
view changes, and robustness to malformed traffic."""

import pytest

from repro.consensus.messages import (
    ClientReply,
    ClientRequestBatch,
    Commit,
    PrePrepare,
)
from repro.consensus.pbft import PbftConfig, PbftReplica
from repro.crypto.costs import CryptoCostModel
from repro.crypto.signatures import KeyRegistry
from repro.errors import ConfigurationError
from repro.ledger.block import Transaction
from repro.net.network import Network
from repro.net.simulator import Simulation
from repro.net.topology import Topology
from repro.types import client_id, replica_id


class RecordingClient:
    """A network node that records replies."""

    def __init__(self, node_id, region, network):
        self.node_id = node_id
        self.region = region
        self.replies = []
        network.register(self)

    def deliver(self, message, sender):
        if isinstance(message, ClientReply):
            self.replies.append((message, sender))


class PbftHarness:
    """A tiny single-region PBFT group driven directly."""

    def __init__(self, n=4, costs=None, config=None):
        self.sim = Simulation(seed=1)
        self.topology = Topology.uniform(["r1"], rtt_ms=2.0)
        self.network = Network(self.sim, self.topology)
        self.registry = KeyRegistry()
        members = [replica_id(1, i) for i in range(1, n + 1)]
        self.replicas = [
            PbftReplica(
                node, "r1", self.sim, self.network, self.registry,
                members=members,
                config=config or PbftConfig(view_change_timeout=0.5,
                                            new_view_timeout=0.5),
                costs=costs or CryptoCostModel.free(),
                record_count=100,
            )
            for node in members
        ]
        self.client = RecordingClient(client_id(1, 1), "r1", self.network)
        self.client_signer = self.registry.register(self.client.node_id)
        self._counter = 0

    @property
    def primary(self):
        return self.replicas[0]

    def make_request(self, n_txns=2):
        self._counter += 1
        batch = tuple(
            Transaction(f"t{self._counter}-{i}", "update", i, "v")
            for i in range(n_txns)
        )
        unsigned = ClientRequestBatch(
            f"b{self._counter}", self.client.node_id, batch, None)
        return ClientRequestBatch(
            unsigned.batch_id, unsigned.client, unsigned.batch,
            self.client_signer.sign(unsigned.payload()),
        )

    def submit(self, request, to=None):
        target = to if to is not None else self.primary.node_id
        self.network.send(self.client.node_id, target, request)

    def run(self, until):
        self.sim.run(until=until)


class TestNormalCase:
    def test_single_request_commits_everywhere(self):
        h = PbftHarness()
        h.submit(h.make_request())
        h.run(until=1.0)
        assert all(r.engine.decided_count == 1 for r in h.replicas)
        assert all(r.ledger.height == 1 for r in h.replicas)

    def test_client_gets_replies_from_all_replicas(self):
        h = PbftHarness()
        h.submit(h.make_request())
        h.run(until=1.0)
        assert len(h.client.replies) == 4
        digests = {m.results_digest for m, _ in h.client.replies}
        assert len(digests) == 1  # deterministic execution

    def test_requests_decided_in_submission_order(self):
        h = PbftHarness()
        first, second = h.make_request(), h.make_request()
        h.submit(first)
        h.submit(second)
        h.run(until=1.0)
        ledger = h.primary.ledger
        assert ledger.height == 2
        assert ledger.block(0).batch == first.batch
        assert ledger.block(1).batch == second.batch

    def test_duplicate_request_decided_once(self):
        h = PbftHarness()
        request = h.make_request()
        h.submit(request)
        h.submit(request)
        h.run(until=1.0)
        assert h.primary.engine.decided_count == 1

    def test_backup_forwards_client_request_to_primary(self):
        h = PbftHarness()
        backup = h.replicas[1]
        h.submit(h.make_request(), to=backup.node_id)
        h.run(until=1.0)
        assert h.primary.engine.decided_count == 1

    def test_ledgers_are_identical(self):
        h = PbftHarness()
        for _ in range(5):
            h.submit(h.make_request())
        h.run(until=2.0)
        head = h.primary.ledger.head_hash
        assert all(r.ledger.head_hash == head for r in h.replicas)

    def test_pipeline_depth_limits_in_flight(self):
        h = PbftHarness(config=PbftConfig(pipeline_depth=1,
                                          view_change_timeout=10.0))
        for _ in range(3):
            h.submit(h.make_request())
        h.run(until=5.0)
        assert h.primary.engine.decided_count == 3  # all complete eventually

    def test_unsigned_request_rejected(self):
        h = PbftHarness()
        batch = (Transaction("x", "update", 1, "v"),
                 Transaction("y", "update", 2, "v"))
        bogus = ClientRequestBatch("bogus", h.client.node_id, batch, None)
        h.submit(bogus)
        h.run(until=1.0)
        assert h.primary.engine.decided_count == 0

    def test_badly_signed_request_rejected(self):
        h = PbftHarness()
        good = h.make_request()
        tampered = ClientRequestBatch(
            good.batch_id, good.client,
            good.batch + (Transaction("evil", "update", 1, "x"),),
            good.signature,
        )
        h.submit(tampered)
        h.run(until=1.0)
        assert h.primary.engine.decided_count == 0


class TestCheckpoints:
    def test_checkpoint_stabilizes_and_garbage_collects(self):
        h = PbftHarness(config=PbftConfig(checkpoint_interval=2,
                                          view_change_timeout=10.0))
        for _ in range(6):
            h.submit(h.make_request())
        h.run(until=3.0)
        for replica in h.replicas:
            assert replica.engine.stable_seq >= 4
            assert replica.engine.decided_count == 6

    def test_progress_continues_after_checkpoints(self):
        h = PbftHarness(config=PbftConfig(checkpoint_interval=1,
                                          view_change_timeout=10.0))
        for _ in range(4):
            h.submit(h.make_request())
        h.run(until=3.0)
        assert h.primary.engine.decided_count == 4


class TestViewChange:
    def test_primary_crash_triggers_view_change_and_progress(self):
        h = PbftHarness()
        h.submit(h.make_request())
        h.run(until=1.0)
        assert h.primary.engine.decided_count == 1
        # Crash the primary, then submit to a backup.
        h.network.failures.crash(h.primary.node_id)
        request = h.make_request()
        for replica in h.replicas[1:]:
            h.submit(request, to=replica.node_id)
        h.run(until=10.0)
        alive = h.replicas[1:]
        assert all(r.engine.view >= 1 for r in alive)
        assert all(r.engine.primary == h.replicas[1].node_id
                   for r in alive)
        assert all(r.engine.decided_count == 2 for r in alive)

    def test_new_primary_reproposes_prepared_requests(self):
        """A request that prepared before the crash survives into the
        new view (PBFT safety across view changes)."""
        h = PbftHarness()
        request = h.make_request()
        # Let the primary order it but crash before commits finish:
        # sever the primary's commit-phase by crashing it right after
        # the pre-prepare propagates.
        h.submit(request)
        h.run(until=0.004)  # preprepare + prepares in flight (2ms RTT)
        h.network.failures.crash(h.primary.node_id)
        h.run(until=10.0)
        alive = h.replicas[1:]
        decided_batches = [
            tuple(txn.txn_id for block in r.ledger for txn in block.batch)
            for r in alive
        ]
        # All alive replicas agree, and if anything was decided it is
        # the original request (never a conflicting one).
        assert len(set(decided_batches)) == 1
        for batches in decided_batches:
            for txn_id in batches:
                assert txn_id.startswith("t1-")

    def test_view_change_excludes_committed_state_divergence(self):
        h = PbftHarness()
        for _ in range(3):
            h.submit(h.make_request())
        h.run(until=1.0)
        h.network.failures.crash(h.primary.node_id)
        request = h.make_request()
        for replica in h.replicas[1:]:
            h.submit(request, to=replica.node_id)
        h.run(until=10.0)
        heads = {r.ledger.head_hash for r in h.replicas[1:]}
        assert len(heads) == 1
        assert all(r.ledger.height == 4 for r in h.replicas[1:])

    def test_force_view_change(self):
        h = PbftHarness()
        for replica in h.replicas:
            replica.engine.force_view_change()
        h.run(until=5.0)
        assert all(r.engine.view == 1 for r in h.replicas)
        assert all(not r.engine.in_view_change for r in h.replicas)

    def test_consecutive_primary_failures_escalate(self):
        h = PbftHarness(n=7)
        h.network.failures.crash(h.replicas[0].node_id)
        h.network.failures.crash(h.replicas[1].node_id)
        request = h.make_request()
        for replica in h.replicas[2:]:
            h.submit(request, to=replica.node_id)
        h.run(until=30.0)
        alive = h.replicas[2:]
        assert all(r.engine.view >= 2 for r in alive)
        assert all(r.engine.decided_count == 1 for r in alive)


class TestValidation:
    def test_preprepare_from_non_primary_ignored(self):
        h = PbftHarness()
        request = h.make_request()
        backup = h.replicas[1]
        fake = PrePrepare(0, 0, 1, request.digest(), request)
        h.network.send(backup.node_id, h.replicas[2].node_id, fake)
        h.run(until=1.0)
        assert h.replicas[2].engine.decided_count == 0

    def test_commit_with_forged_signature_ignored(self):
        h = PbftHarness()
        request = h.make_request()
        h.submit(request)
        h.run(until=0.001)
        victim = h.replicas[2]
        # A Byzantine replica fabricates a commit claiming to be r1.4.
        forged = Commit(0, 0, 1, request.digest(), replica_id(1, 4),
                        h.client_signer.sign("wrong-payload"))
        h.network.send(h.replicas[1].node_id, victim.node_id, forged)
        h.run(until=1.0)
        # Consensus still works, exactly once, via legitimate commits.
        assert victim.engine.decided_count == 1

    def test_engine_requires_owner_membership(self):
        h = PbftHarness()
        from repro.consensus.pbft import PbftEngine
        with pytest.raises(ConfigurationError):
            PbftEngine(
                owner=h.replicas[0],
                cluster_id=0,
                members=[replica_id(2, 1)],
                config=PbftConfig(),
                on_decide=lambda *a: None,
            )

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            PbftConfig(pipeline_depth=0)
        with pytest.raises(ConfigurationError):
            PbftConfig(checkpoint_interval=0)
