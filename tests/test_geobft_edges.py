"""Edge cases of GeoBFT: single-cluster deployments, bounded round
pipelines, share garbage collection, and no-op boundedness."""

import pytest

from repro.bench.deployment import Deployment, ExperimentConfig
from repro.consensus.pbft import PbftConfig
from repro.core.config import GeoBftConfig
from repro.core.geobft import SHARE_RETENTION_ROUNDS
from repro.errors import ConfigurationError
from repro.types import replica_id


def cfg(**overrides):
    defaults = dict(
        protocol="geobft",
        num_clusters=2,
        replicas_per_cluster=4,
        batch_size=4,
        clients_per_cluster=1,
        client_outstanding=2,
        duration=2.5,
        warmup=0.5,
        record_count=300,
        seed=71,
        fast_crypto=True,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestSingleCluster:
    def test_z1_geobft_works(self):
        """With one cluster GeoBFT degenerates to local PBFT plus the
        ordering layer — every round has exactly one share (its own)."""
        deployment = Deployment(cfg(num_clusters=1))
        result = deployment.run()
        assert result.safety_ok
        assert result.throughput_txn_s > 0
        # No inter-cluster traffic at all.
        assert result.global_messages == 0
        sample = next(iter(deployment.replicas.values()))
        assert all(block.cluster_id == 1 for block in sample.ledger)


class TestRoundPipeline:
    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            GeoBftConfig(round_pipeline=0)

    def test_sequential_rounds_still_safe_and_live(self):
        config = cfg()
        config.geobft = GeoBftConfig(remote_timeout=10.0, round_pipeline=1)
        deployment = Deployment(config)
        result = deployment.run()
        assert result.safety_ok
        assert result.throughput_txn_s > 0

    def test_window_bounds_replication_run_ahead(self):
        config = cfg(duration=3.0)
        config.geobft = GeoBftConfig(remote_timeout=10.0, round_pipeline=2)
        deployment = Deployment(config)
        deployment.run()
        for replica in deployment.replicas.values():
            # next_seq - 1 is the highest round local replication
            # touched; it may never exceed executed + window (+1 for
            # the in-flight instant at cut-off).
            ahead = (replica.engine.next_seq - 1) - replica.executed_rounds
            assert ahead <= 2 + 1

    def test_deeper_window_is_faster(self):
        def tput(window):
            config = cfg(duration=2.0)
            config.geobft = GeoBftConfig(remote_timeout=10.0,
                                         round_pipeline=window)
            return Deployment(config).run().throughput_txn_s

        assert tput(8) > tput(1) * 1.5


class TestShareGarbageCollection:
    def test_old_shares_are_dropped(self):
        deployment = Deployment(cfg(duration=4.0, batch_size=2,
                                    client_outstanding=4))
        deployment.run()
        replica = deployment.replicas[replica_id(1, 2)]
        executed = replica.executed_rounds
        if executed <= SHARE_RETENTION_ROUNDS:
            pytest.skip("run too short to trigger GC")
        oldest_kept = min(
            (round_id for _c, round_id in replica._shares), default=None)
        assert oldest_kept is not None
        assert oldest_kept > executed - SHARE_RETENTION_ROUNDS - 1

    def test_own_decision_retention_bounded(self):
        config = cfg(duration=4.0, batch_size=2, client_outstanding=4)
        config.geobft = GeoBftConfig(certificate_retention_rounds=16,
                                     remote_timeout=10.0)
        deployment = Deployment(config)
        deployment.run()
        replica = deployment.replicas[replica_id(1, 1)]
        assert len(replica._own_decisions) <= 16 + 1


class TestNoOpBoundedness:
    def test_noops_do_not_outrun_known_rounds(self):
        """The no-op filler proposes only up to the highest round any
        cluster is known to have reached — an idle cluster must not
        spin no-op rounds on its own."""
        deployment = Deployment(cfg(duration=2.0))
        idle_cluster_clients = [c for c in deployment.clients
                                if c.node_id.cluster == 2]
        active = [c for c in deployment.clients
                  if c.node_id.cluster == 1]
        assert idle_cluster_clients  # cluster 2 stays idle
        for client in active:
            deployment.sim.schedule(0.0, client.start)
        deployment.sim.run(until=2.0)
        r21 = deployment.replicas[replica_id(2, 1)]
        r11 = deployment.replicas[replica_id(1, 1)]
        # Cluster 2 proposed no-ops only to match cluster 1's rounds.
        assert r21.engine.next_seq <= r11.engine.next_seq + 1

    def test_fully_idle_system_proposes_nothing(self):
        deployment = Deployment(cfg(duration=1.0))
        deployment.sim.run(until=1.0)  # no clients started
        for replica in deployment.replicas.values():
            assert replica.engine.next_seq == 1
            assert replica.executed_rounds == 0
