"""Tests for the crypto hot-path overhaul: iterative encoding, cached
digests/signatures, the deployment-wide verification memo, and the
simulator fast path.

The invariant under test throughout: every cache is a pure host-side
memo — cached results are byte-identical to fresh recomputation, and a
reconstructed (hence possibly different) message can never reuse a stale
entry.
"""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.consensus.messages import (
    ClientRequestBatch,
    Commit,
    CommitCertificate,
)
from repro.crypto.digests import (
    CachedEncodable,
    cached_digest,
    digest,
    digest_of,
    encode_canonical,
)
from repro.crypto.macs import MacAuthenticator
from repro.crypto.signatures import KeyRegistry, VerificationCache
from repro.errors import InvalidCertificateError
from repro.ledger.block import Transaction, batch_digest
from repro.net.simulator import Simulation
from repro.types import client_id, replica_id

# Transactions with bounded, encodable fields.
transactions = st.builds(
    Transaction,
    txn_id=st.text(max_size=12),
    op=st.sampled_from(["read", "update", "insert", "modify", "noop"]),
    key=st.integers(min_value=0, max_value=10_000),
    value=st.text(max_size=12),
)
batches = st.lists(transactions, min_size=1, max_size=5).map(tuple)


def _request(batch, batch_id="b-1"):
    return ClientRequestBatch(batch_id, client_id(1, 1), batch, None)


class TestIterativeEncoderDepth:
    """Regression: the old recursive encoder hit Python's recursion
    limit on deeply nested payloads."""

    def test_10k_deep_nesting_encodes(self):
        value = "leaf"
        for _ in range(10_000):
            value = (value,)
        encoded = encode_canonical(value)
        assert encoded.startswith(b"l1:" * 3)
        assert len(digest_of(value)) == 32

    def test_deep_nesting_matches_shallow_composition(self):
        # l1:<inner>; framing applied once per level.
        deep = ("x",)
        for _ in range(9_999):
            deep = (deep,)
        expected = b"s1:x"
        for _ in range(10_000):
            expected = b"l1:" + expected + b";"
        assert encode_canonical(deep) == expected

    def test_deep_dict_nesting(self):
        value = {"k": 0}
        for _ in range(10_000):
            value = {"k": value}
        assert digest_of(value) == digest_of(dict(value))


class TestCachedEncoding:
    @given(batches)
    def test_cached_encoding_matches_historical_encoding(self, batch):
        """Encoding message objects equals encoding their payload trees
        built from primitives only (the pre-cache wire format)."""
        request = _request(batch)
        historical = (
            "request",
            request.batch_id,
            str(request.client),
            tuple(txn.payload() for txn in batch),
        )
        assert request.encoded() == encode_canonical(historical)
        # And the cache returns the same bytes on every later call.
        assert request.encoded() == encode_canonical(historical)

    @given(batches)
    def test_payload_digest_matches_fresh_recompute(self, batch):
        request = _request(batch)
        cached = request.payload_digest()
        fresh = digest(encode_canonical((
            "request", request.batch_id, str(request.client),
            tuple(txn.payload() for txn in batch),
        )))
        assert cached == fresh
        assert cached_digest(request) == fresh

    @given(batches)
    def test_batch_digest_matches_historical_definition(self, batch):
        assert batch_digest(batch) == digest_of(
            tuple(txn.payload() for txn in batch))

    def test_nested_cache_splicing(self):
        """A certificate embedding pre-encoded children produces the
        same bytes as one whose children were never touched."""
        batch = (Transaction("t1", "update", 1, "v"),)
        request_a = _request(batch)
        request_b = _request(batch)
        commit = Commit(1, 0, 1, request_a.digest(), replica_id(1, 1), None)
        cert_a = CommitCertificate(1, 1, 0, request_a, (commit,))
        cert_b = CommitCertificate(1, 1, 0, request_b, (commit,))
        # Warm request_a's (and commit's) caches first.
        request_a.encoded()
        commit.encoded()
        assert cert_a.encoded() == cert_b.encoded()
        assert cert_a.digest() == cert_b.digest()

    def test_reconstructed_message_does_not_reuse_stale_cache(self):
        batch = (Transaction("t1", "update", 1, "v"),)
        request = _request(batch, batch_id="original")
        original_digest = request.payload_digest()
        assert hasattr(request, "_encoded_cache")
        mutated = dataclasses.replace(request, batch_id="mutated")
        # The reconstructed instance starts cold (the cache lives in a
        # slot, not __dict__, so hasattr is the right probe).
        assert not hasattr(mutated, "_encoded_cache")
        # ...and its digest reflects the new content.
        assert mutated.payload_digest() != original_digest
        identical = dataclasses.replace(request)
        assert identical.payload_digest() == original_digest

    def test_plain_payload_objects_still_encode(self):
        class Msg:
            def payload(self):
                return ("m", 1)

        assert encode_canonical(Msg()) == encode_canonical(("m", 1))


class TestSignatureMemoization:
    def _registry(self):
        return KeyRegistry(seed=b"hotpath-tests")

    @given(batches)
    def test_signature_over_object_matches_signature_over_payload(
            self, batch):
        """Signing a message object equals signing its payload tuple —
        the overhaul changed call sites from one to the other."""
        registry = self._registry()
        signer = registry.register(client_id(1, 1))
        request = _request(batch)
        assert signer.sign(request).tag == signer.sign(request.payload()).tag

    @given(batches)
    def test_cached_verification_matches_fresh(self, batch):
        registry = self._registry()
        signer = registry.register(client_id(1, 1))
        request = _request(batch)
        signature = signer.sign(request)
        fresh_registry = self._registry()
        fresh_registry.register(client_id(1, 1))
        first = registry.verify(request, signature)
        second = registry.verify(request, signature)  # cache hit
        uncached = fresh_registry.verify(request.payload(), signature)
        assert first is True and second is True and uncached is True

    def test_negative_outcomes_are_cached(self):
        registry = self._registry()
        registry.register(client_id(1, 1))
        request = _request((Transaction("t", "noop", 0),))
        forged = dataclasses.replace(
            registry.register(client_id(1, 1)).sign(request),
            tag=b"\x00" * 32)
        assert registry.verify(request, forged) is False
        assert registry.verify(request, forged) is False
        assert registry.verification_cache.hits >= 1

    def test_verification_cache_counts_and_eviction(self):
        cache = VerificationCache(max_entries=2)
        cache.put(("a",), True)
        cache.put(("b",), False)
        assert cache.get(("a",)) is True
        assert cache.get(("b",)) is False
        cache.put(("c",), True)  # evicts the oldest entry
        assert len(cache) == 2
        assert cache.get(("a",)) is None
        assert cache.stats()["hits"] == 2

    def test_shared_cache_across_registry_and_macs(self):
        cache = VerificationCache()
        registry = KeyRegistry(seed=b"x", cache=cache)
        assert registry.verification_cache is cache

    def test_certificate_forwarding_costs_one_hmac_per_commit(self):
        """n replicas re-verifying one certificate: after the first
        pass, every signature check is a memo hit."""
        registry = self._registry()
        batch = (Transaction("t1", "update", 1, "v"),)
        request = _request(batch)
        members = [replica_id(1, i) for i in range(1, 5)]
        commits = tuple(
            Commit(1, 0, 1, request.digest(), node,
                   registry.register(node).sign(
                       Commit(1, 0, 1, request.digest(), node, None)))
            for node in members
        )
        cert = CommitCertificate(1, 1, 0, request, commits)
        cert.verify(registry, quorum=3)
        misses_after_first = registry.verification_cache.misses
        for _ in range(5):  # five more replicas re-verify
            cert.verify(registry, quorum=3)
        assert registry.verification_cache.misses == misses_after_first

    def test_bad_certificate_still_rejected_when_cached(self):
        registry = self._registry()
        batch = (Transaction("t1", "update", 1, "v"),)
        request = _request(batch)
        node = replica_id(1, 1)
        registry.register(node)
        bad = Commit(1, 0, 1, request.digest(), node,
                     dataclasses.replace(
                         registry.register(node).sign(("x",)),
                         tag=b"\x01" * 32))
        cert = CommitCertificate(1, 1, 0, request, (bad,) * 3)
        for _ in range(2):  # second round exercises the negative cache
            with pytest.raises(InvalidCertificateError):
                cert.verify(registry, quorum=1)


class TestMacMemoization:
    def test_cached_mac_verify_matches_fresh(self):
        cache = VerificationCache()
        alice = MacAuthenticator(client_id(1, 1), cache=cache)
        bob = MacAuthenticator(replica_id(1, 1), cache=cache)
        uncached_bob = MacAuthenticator(replica_id(1, 1))
        request = _request((Transaction("t", "noop", 0),))
        mac = alice.tag(replica_id(1, 1), request)
        assert bob.verify(mac, request) is True
        assert bob.verify(mac, request) is True  # memo hit
        assert uncached_bob.verify(mac, request) is True
        wrong = dataclasses.replace(mac, tag=b"\x00" * len(mac.tag))
        assert bob.verify(wrong, request) is False
        assert bob.verify(wrong, request) is False

    def test_pair_keys_are_memoized_and_stable(self):
        alice = MacAuthenticator(client_id(1, 1))
        first = alice._pair_key(replica_id(1, 2))
        assert alice._pair_key(replica_id(1, 2)) == first
        assert MacAuthenticator(client_id(1, 1))._pair_key(
            replica_id(1, 2)) == first


class TestSimulatorFastPath:
    def test_post_and_schedule_share_ordering(self):
        sim = Simulation(seed=0)
        order = []
        sim.schedule(1.0, order.append, "timer-a")
        sim.post(1.0, order.append, "post-b")
        sim.schedule(1.0, order.append, "timer-c")
        sim.post(0.5, order.append, "post-first")
        sim.run()
        assert order == ["post-first", "timer-a", "post-b", "timer-c"]

    def test_post_counts_toward_max_events(self):
        sim = Simulation(seed=0)
        fired = []
        for i in range(5):
            sim.post(0.0, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_cancelled_timers_skip_but_posts_fire(self):
        sim = Simulation(seed=0)
        fired = []
        timer = sim.schedule(0.5, fired.append, "cancelled")
        sim.post(0.5, fired.append, "posted")
        timer.cancel()
        sim.run()
        assert fired == ["posted"]

    def test_step_handles_both_event_kinds(self):
        sim = Simulation(seed=0)
        fired = []
        sim.post(0.1, fired.append, "p")
        sim.schedule(0.2, fired.append, "t")
        assert sim.step() and fired == ["p"]
        assert sim.step() and fired == ["p", "t"]
        assert not sim.step()

    def test_post_rejects_negative_delay(self):
        from repro.errors import SimulationError
        sim = Simulation(seed=0)
        with pytest.raises(SimulationError):
            sim.post(-0.1, lambda: None)


class TestWireSizeCache:
    def test_size_bytes_computed_once_per_instance(self):
        from repro.net.network import _message_size

        calls = []

        class Sized:
            def size_bytes(self):
                calls.append(1)
                return 123

        message = Sized()
        assert _message_size(message) == 123
        assert _message_size(message) == 123
        assert len(calls) == 1

    def test_slotted_messages_fall_back_to_recompute(self):
        from repro.net.network import _message_size

        class Slotted:
            __slots__ = ()

            def size_bytes(self):
                return 7

        assert _message_size(Slotted()) == 7
