"""Unit tests for the remote view-change manager (Figure 7), driven with
a stub owner so each rule can be exercised in isolation."""

import pytest

from repro.consensus.messages import Drvc, Rvc
from repro.core.remote_view_change import RemoteViewChangeManager
from repro.crypto.costs import CryptoCostModel
from repro.crypto.signatures import KeyRegistry
from repro.net.simulator import Simulation
from repro.types import replica_id

N = 4
F = 1
OWN = 2      # manager lives in cluster 2
REMOTE = 1   # and watches cluster 1


class StubOwner:
    """Minimal owner surface the manager needs."""

    def __init__(self, sim, registry, node_id):
        self.sim = sim
        self.registry = registry
        self.node_id = node_id
        self.costs = CryptoCostModel.free()
        self.signer = registry.register(node_id)
        self.sent = []        # (dst, message)
        self.broadcasts = []  # (dsts, message)

    def set_timer(self, delay, fn, *args):
        return self.sim.schedule(delay, fn, *args)

    def send(self, dst, message):
        self.sent.append((dst, message))

    def broadcast(self, dsts, message, include_self=False):
        self.broadcasts.append((list(dsts), message))

    def sign(self, payload):
        return self.signer.sign(payload)

    def charge_cpu(self, cost):
        pass


@pytest.fixture
def setup():
    sim = Simulation(seed=1)
    registry = KeyRegistry()
    members = [replica_id(OWN, i) for i in range(1, N + 1)]
    owner = StubOwner(sim, registry, members[0])
    shares = {}
    failures = []
    manager = RemoteViewChangeManager(
        owner=owner,
        own_cluster=OWN,
        own_members=members,
        remote_timeout=1.0,
        get_share=lambda c, r: shares.get((c, r)),
        on_local_failure_detected=lambda: failures.append(owner.sim.now),
        recent_view_change_window=5.0,
    )
    return sim, registry, members, owner, shares, failures, manager


def make_rvc(registry, sender, target_cluster=OWN, round_id=1, v=0):
    unsigned = Rvc(target_cluster, round_id, v, sender, None)
    signer = registry.register(sender)
    return Rvc(target_cluster, round_id, v, sender,
               signer.sign(unsigned.payload()))


class TestDetection:
    def test_timer_expiry_broadcasts_drvc(self, setup):
        sim, _reg, members, owner, _shares, _f, manager = setup
        manager.arm_timer(REMOTE, 1)
        sim.run(until=2.0)
        assert manager.detection_in_progress(REMOTE, 1)
        drvcs = [m for _, m in owner.broadcasts if isinstance(m, Drvc)]
        assert len(drvcs) == 1
        assert drvcs[0].target_cluster == REMOTE
        assert drvcs[0].vc_count == 0
        assert manager.vc_count(REMOTE) == 1  # bumped after broadcast

    def test_share_arrival_cancels_timer(self, setup):
        sim, _reg, _members, owner, shares, _f, manager = setup
        manager.arm_timer(REMOTE, 1)
        shares[(REMOTE, 1)] = "the-share"
        manager.on_share_received(REMOTE, 1)
        sim.run(until=2.0)
        assert not manager.detection_in_progress(REMOTE, 1)
        assert owner.broadcasts == []

    def test_timer_not_armed_when_share_already_present(self, setup):
        sim, _reg, _members, owner, shares, _f, manager = setup
        shares[(REMOTE, 1)] = "the-share"
        manager.arm_timer(REMOTE, 1)
        sim.run(until=2.0)
        assert owner.broadcasts == []

    def test_exponential_backoff(self, setup):
        """After a remote view change the next timer doubles (§2.3)."""
        sim, _reg, _members, owner, shares, _f, manager = setup
        manager.arm_timer(REMOTE, 1)
        sim.run(until=1.5)  # first timeout at 1.0
        assert manager.vc_count(REMOTE) == 1
        # The round-1 share arrives; stop watching round 1.
        shares[(REMOTE, 1)] = "share-1"
        manager.on_share_received(REMOTE, 1)
        # A new round's timer now runs at 2x the base timeout.
        manager.arm_timer(REMOTE, 2)
        sim.run(until=2.6)  # 1.5 + 2.0 = 3.5 not yet reached
        drvcs = [m for _, m in owner.broadcasts if isinstance(m, Drvc)]
        assert len(drvcs) == 1
        sim.run(until=4.0)
        drvcs = [m for _, m in owner.broadcasts if isinstance(m, Drvc)]
        assert len(drvcs) == 2
        assert drvcs[1].round_id == 2
        assert drvcs[1].vc_count == 1


class TestDrvcHandling:
    def test_holder_of_share_answers_detector(self, setup):
        """Figure 7, lines 5-7: a replica that received m sends it to
        the DRVC sender."""
        _sim, _reg, members, owner, shares, _f, manager = setup
        shares[(REMOTE, 1)] = "the-share"
        peer = members[1]
        manager.handle_drvc(Drvc(REMOTE, 1, 0, peer), peer)
        assert owner.sent == [(peer, "the-share")]

    def test_f_plus_1_detections_force_joining(self, setup):
        """Figure 7, lines 8-11."""
        _sim, _reg, members, owner, _shares, _f, manager = setup
        manager.handle_drvc(Drvc(REMOTE, 1, 0, members[1]), members[1])
        assert not manager.detection_in_progress(REMOTE, 1)
        manager.handle_drvc(Drvc(REMOTE, 1, 0, members[2]), members[2])
        # f + 1 = 2 votes: we join the detection.
        assert manager.detection_in_progress(REMOTE, 1)

    def test_n_minus_f_agreement_sends_rvc(self, setup):
        """Figure 7, lines 12-13: on n - f votes, send the RVC to the
        remote replica with the same index."""
        sim, _reg, members, owner, _shares, _f, manager = setup
        manager.arm_timer(REMOTE, 1)
        sim.run(until=1.5)  # own detection broadcast (1 vote: ourself)
        manager.handle_drvc(Drvc(REMOTE, 1, 0, members[1]), members[1])
        manager.handle_drvc(Drvc(REMOTE, 1, 0, members[2]), members[2])
        rvcs = [(d, m) for d, m in owner.sent if isinstance(m, Rvc)]
        assert len(rvcs) == 1
        dst, rvc = rvcs[0]
        assert dst == replica_id(REMOTE, owner.node_id.index)
        assert rvc.target_cluster == REMOTE
        assert rvc.signature is not None

    def test_drvc_from_foreign_cluster_ignored(self, setup):
        _sim, _reg, _members, owner, _shares, _f, manager = setup
        foreign = replica_id(3, 1)
        manager.handle_drvc(Drvc(REMOTE, 1, 0, foreign), foreign)
        assert owner.sent == []
        assert not manager.detection_in_progress(REMOTE, 1)

    def test_drvc_spoofed_sender_ignored(self, setup):
        _sim, _reg, members, _owner, _shares, _f, manager = setup
        manager.handle_drvc(Drvc(REMOTE, 1, 0, members[1]), members[2])
        manager.handle_drvc(Drvc(REMOTE, 1, 0, members[1]), members[3])
        assert not manager.detection_in_progress(REMOTE, 1)


class TestResponseRole:
    def test_f_plus_1_rvcs_trigger_local_view_change(self, setup):
        _sim, registry, _members, owner, _shares, failures, manager = setup
        remote_members = [replica_id(3, i) for i in range(1, N + 1)]
        for i, sender in enumerate(remote_members[:F + 1]):
            rvc = make_rvc(registry, sender)
            manager.handle_rvc(rvc, sender)
        assert len(failures) == 1
        assert manager.pending_resend == {3: 1}

    def test_externally_received_rvc_forwarded_locally(self, setup):
        _sim, registry, members, owner, _shares, _f, manager = setup
        sender = replica_id(3, 1)
        rvc = make_rvc(registry, sender)
        manager.handle_rvc(rvc, sender)
        forwarded = [m for _, m in owner.broadcasts if isinstance(m, Rvc)]
        assert forwarded == [rvc]

    def test_relayed_rvc_not_reforwarded(self, setup):
        _sim, registry, members, owner, _shares, _f, manager = setup
        origin = replica_id(3, 2)
        rvc = make_rvc(registry, origin)
        manager.handle_rvc(rvc, members[1])  # relayed by a local peer
        assert all(not isinstance(m, Rvc) for _, m in owner.broadcasts)

    def test_replay_protection_one_view_change_per_v(self, setup):
        """Figure 7, line 16, condition 4."""
        _sim, registry, _members, _owner, _shares, failures, manager = setup
        remote_members = [replica_id(3, i) for i in range(1, N + 1)]
        for sender in remote_members:
            manager.handle_rvc(make_rvc(registry, sender), sender)
        assert len(failures) == 1  # not one per extra vote
        # Replaying the same v never triggers again.
        for sender in remote_members:
            manager.handle_rvc(make_rvc(registry, sender), sender)
        assert len(failures) == 1
        # A new v (after the recent-view-change window) triggers anew.
        manager._last_local_view_change = float("-inf")
        for sender in remote_members:
            manager.handle_rvc(make_rvc(registry, sender, v=1), sender)
        assert len(failures) == 2

    def test_recent_local_view_change_suppresses_trigger(self, setup):
        """Figure 7, line 16, condition 3."""
        _sim, registry, _members, _owner, _shares, failures, manager = setup
        manager.note_local_view_change()
        remote_members = [replica_id(3, i) for i in range(1, N + 1)]
        for sender in remote_members[:F + 1]:
            manager.handle_rvc(make_rvc(registry, sender), sender)
        assert failures == []
        # But the resend request is still remembered for the new primary.
        assert manager.pending_resend == {3: 1}

    def test_rvc_for_other_cluster_ignored(self, setup):
        _sim, registry, _members, _owner, _shares, failures, manager = setup
        sender = replica_id(3, 1)
        rvc = make_rvc(registry, sender, target_cluster=9)
        manager.handle_rvc(rvc, sender)
        assert failures == []

    def test_rvc_from_own_cluster_origin_ignored(self, setup):
        _sim, registry, members, _owner, _shares, failures, manager = setup
        rvc = make_rvc(registry, members[1])
        manager.handle_rvc(rvc, members[1])
        assert failures == []

    def test_unsigned_or_forged_rvc_ignored(self, setup):
        _sim, registry, _members, _owner, _shares, failures, manager = setup
        sender = replica_id(3, 1)
        unsigned = Rvc(OWN, 1, 0, sender, None)
        manager.handle_rvc(unsigned, sender)
        good = make_rvc(registry, sender)
        forged = Rvc(OWN, 1, 0, replica_id(3, 2), good.signature)
        manager.handle_rvc(forged, replica_id(3, 2))
        assert failures == []

    def test_pending_resend_keeps_earliest_round(self, setup):
        _sim, registry, _members, _owner, _shares, _f, manager = setup
        remote = [replica_id(3, i) for i in range(1, N + 1)]
        manager.handle_rvc(make_rvc(registry, remote[0], round_id=5), remote[0])
        manager.handle_rvc(make_rvc(registry, remote[1], round_id=5), remote[1])
        manager._last_local_view_change = float("-inf")
        manager.handle_rvc(make_rvc(registry, remote[2], round_id=3, v=1),
                           remote[2])
        manager.handle_rvc(make_rvc(registry, remote[3], round_id=3, v=1),
                           remote[3])
        assert manager.pending_resend == {3: 3}
        manager.clear_resend(3)
        assert manager.pending_resend == {}
