"""Tests for the network model: latency, uplink serialization, drops."""

import pytest

from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.net.simulator import Simulation
from repro.net.topology import Topology
from repro.types import NodeId, replica_id


class FakeMessage:
    def __init__(self, size: int = 1000):
        self._size = size

    def size_bytes(self) -> int:
        return self._size


class FakeNode:
    def __init__(self, node_id: NodeId, region: str):
        self.node_id = node_id
        self.region = region
        self.received = []

    def deliver(self, message, sender):
        self.received.append((message, sender))


@pytest.fixture
def wan():
    # 100 ms RTT across regions, 1 ms local; 8 Mbit/s = 1 MB/s links so
    # transmission times are easy to compute.
    return Topology.custom(
        ["west", "east"],
        {("west", "west"): 1.0, ("east", "east"): 1.0,
         ("west", "east"): 100.0},
        {("west", "west"): 8.0, ("east", "east"): 8.0, ("west", "east"): 8.0},
    )


@pytest.fixture
def setup(wan):
    sim = Simulation()
    net = Network(sim, wan)
    a = FakeNode(replica_id(1, 1), "west")
    b = FakeNode(replica_id(2, 1), "east")
    c = FakeNode(replica_id(2, 2), "east")
    for node in (a, b, c):
        net.register(node)
    return sim, net, a, b, c


class TestDeliveryTiming:
    def test_latency_plus_transmission(self, setup):
        sim, net, a, b, _c = setup
        net.send(a.node_id, b.node_id, FakeMessage(size=1_000_000))
        sim.run()
        # 1 MB at 1 MB/s = 1 s transmit + 0.05 s one-way latency.
        assert sim.now == pytest.approx(1.05)
        assert len(b.received) == 1

    def test_uplink_serializes_same_region_sends(self, setup):
        """Two messages to the same region share the sender's uplink."""
        sim, net, a, b, c = setup
        arrivals = {}
        net.send(a.node_id, b.node_id, FakeMessage(size=1_000_000))
        net.send(a.node_id, c.node_id, FakeMessage(size=1_000_000))
        sim.run()
        # First arrives at 1.05; second waits for the uplink: 2 s
        # serialization + 0.05 latency = 2.05.
        assert sim.now == pytest.approx(2.05)

    def test_different_region_uplinks_are_parallel(self, wan):
        sim = Simulation()
        net = Network(sim, wan)
        a = FakeNode(replica_id(1, 1), "west")
        local = FakeNode(replica_id(1, 2), "west")
        remote = FakeNode(replica_id(2, 1), "east")
        for node in (a, local, remote):
            net.register(node)
        net.send(a.node_id, remote.node_id, FakeMessage(size=1_000_000))
        net.send(a.node_id, local.node_id, FakeMessage(size=1_000_000))
        sim.run()
        # Local link is independent: it does not queue behind the remote
        # transfer; total time is the slower of the two, not the sum.
        assert sim.now == pytest.approx(1.05)

    def test_self_send_is_immediate(self, setup):
        sim, net, a, _b, _c = setup
        net.send(a.node_id, a.node_id, FakeMessage())
        sim.run()
        assert sim.now == 0.0
        assert len(a.received) == 1

    def test_multicast_reaches_all(self, setup):
        sim, net, a, b, c = setup
        net.multicast(a.node_id, [b.node_id, c.node_id], FakeMessage(100))
        sim.run()
        assert len(b.received) == 1
        assert len(c.received) == 1

    def test_sender_recorded(self, setup):
        sim, net, a, b, _c = setup
        net.send(a.node_id, b.node_id, FakeMessage(10))
        sim.run()
        assert b.received[0][1] == a.node_id


class TestRegistration:
    def test_unknown_region_rejected(self, setup):
        _sim, net, *_ = setup
        with pytest.raises(ConfigurationError):
            net.register(FakeNode(replica_id(3, 1), "mars"))

    def test_duplicate_id_rejected(self, setup):
        _sim, net, a, *_ = setup
        with pytest.raises(ConfigurationError):
            net.register(FakeNode(a.node_id, "west"))

    def test_unknown_node_lookup_rejected(self, setup):
        _sim, net, *_ = setup
        with pytest.raises(ConfigurationError):
            net.node(replica_id(9, 9))

    def test_known_nodes(self, setup):
        _sim, net, a, b, c = setup
        assert set(net.known_nodes()) == {a.node_id, b.node_id, c.node_id}


class TestObserversAndFailures:
    def test_observer_sees_sends_with_locality(self, setup):
        sim, net, a, b, _c = setup
        seen = []
        net.add_observer(lambda s, d, m, size, local:
                         seen.append((s, d, size, local)))
        net.send(a.node_id, b.node_id, FakeMessage(77))
        sim.run()
        assert seen == [(a.node_id, b.node_id, 77, False)]

    def test_crashed_sender_sends_nothing(self, setup):
        sim, net, a, b, _c = setup
        net.failures.crash(a.node_id)
        net.send(a.node_id, b.node_id, FakeMessage())
        sim.run()
        assert b.received == []

    def test_crashed_receiver_gets_nothing(self, setup):
        sim, net, a, b, _c = setup
        net.failures.crash(b.node_id)
        net.send(a.node_id, b.node_id, FakeMessage())
        sim.run()
        assert b.received == []

    def test_severed_link_drops_in_flight(self, setup):
        sim, net, a, b, c = setup
        net.failures.sever(a.node_id, b.node_id)
        net.send(a.node_id, b.node_id, FakeMessage(100))
        net.send(a.node_id, c.node_id, FakeMessage(100))
        sim.run()
        assert b.received == []
        assert len(c.received) == 1

    def test_send_rule_suppresses_at_sender(self, setup):
        sim, net, a, b, c = setup
        net.failures.add_send_rule(
            lambda src, dst, msg: dst == b.node_id
        )
        net.send(a.node_id, b.node_id, FakeMessage(100))
        net.send(a.node_id, c.node_id, FakeMessage(100))
        sim.run()
        assert b.received == []
        assert len(c.received) == 1

    def test_suppressed_send_consumes_no_uplink(self, setup):
        """A Byzantine sender that omits a message spends no bandwidth."""
        sim, net, a, b, c = setup
        net.failures.add_send_rule(lambda s, d, m: d == b.node_id)
        net.send(a.node_id, b.node_id, FakeMessage(size=1_000_000))
        net.send(a.node_id, c.node_id, FakeMessage(size=1_000_000))
        sim.run()
        assert sim.now == pytest.approx(1.05)  # no queueing behind drop

    def test_receive_rule_drops_at_receiver(self, setup):
        sim, net, a, b, _c = setup
        rule = net.failures.add_receive_rule(
            lambda src, dst, msg: dst == b.node_id
        )
        net.send(a.node_id, b.node_id, FakeMessage(10))
        sim.run()
        assert b.received == []
        net.failures.remove_receive_rule(rule)
        net.send(a.node_id, b.node_id, FakeMessage(10))
        sim.run()
        assert len(b.received) == 1

    def test_uplink_backlog_diagnostic(self, setup):
        sim, net, a, b, _c = setup
        net.send(a.node_id, b.node_id, FakeMessage(size=2_000_000))
        assert net.uplink_backlog(a.node_id, "east") == pytest.approx(2.0)
        assert net.uplink_backlog(a.node_id, "west") == 0.0


class TestSharedWanEgress:
    """Cross-region sends share one egress pipe per sender (the NIC),
    while local traffic has its own lane — the constraint that makes a
    single-primary protocol plateau (Figure 13)."""

    @pytest.fixture
    def tri(self):
        topo = Topology.custom(
            ["a", "b", "c"],
            {("a", "a"): 1.0, ("b", "b"): 1.0, ("c", "c"): 1.0,
             ("a", "b"): 100.0, ("a", "c"): 100.0, ("b", "c"): 100.0},
            # 8 Mbit/s = 1 MB/s on every pair for easy arithmetic.
            {("a", "a"): 8.0, ("b", "b"): 8.0, ("c", "c"): 8.0,
             ("a", "b"): 8.0, ("a", "c"): 8.0, ("b", "c"): 8.0},
        )
        sim = Simulation()
        net = Network(sim, topo)
        src = FakeNode(replica_id(1, 1), "a")
        local = FakeNode(replica_id(1, 2), "a")
        in_b = FakeNode(replica_id(2, 1), "b")
        in_c = FakeNode(replica_id(3, 1), "c")
        for node in (src, local, in_b, in_c):
            net.register(node)
        return sim, net, src, local, in_b, in_c

    def test_sends_to_different_remote_regions_serialize(self, tri):
        sim, net, src, _local, in_b, in_c = tri
        net.send(src.node_id, in_b.node_id, FakeMessage(size=1_000_000))
        net.send(src.node_id, in_c.node_id, FakeMessage(size=1_000_000))
        sim.run()
        # Second transfer queues behind the first on the shared egress:
        # 2 s serialization + 0.05 s propagation.
        assert sim.now == pytest.approx(2.05)

    def test_local_traffic_bypasses_wan_egress(self, tri):
        sim, net, src, local, in_b, _in_c = tri
        net.send(src.node_id, in_b.node_id, FakeMessage(size=1_000_000))
        net.send(src.node_id, local.node_id, FakeMessage(size=1_000_000))
        sim.run()
        # The local copy does not wait for the WAN transfer.
        assert sim.now == pytest.approx(1.05)

    def test_wan_backlog_reported(self, tri):
        _sim, net, src, _local, in_b, in_c = tri
        net.send(src.node_id, in_b.node_id, FakeMessage(size=2_000_000))
        assert net.uplink_backlog(src.node_id, "b") == pytest.approx(2.0)
        # Shared pipe: the backlog shows for any remote region.
        assert net.uplink_backlog(src.node_id, "c") == pytest.approx(2.0)
        assert net.uplink_backlog(src.node_id, "a") == 0.0


class TestMulticastFastPath:
    """The batched multicast path must be observationally identical to a
    loop of per-destination sends — same delivery times, same uplink
    accounting, same event count, same observer totals."""

    def _fresh(self, wan):
        sim = Simulation()
        net = Network(sim, wan)
        src = FakeNode(replica_id(1, 1), "west")
        local = FakeNode(replica_id(1, 2), "west")
        b = FakeNode(replica_id(2, 1), "east")
        c = FakeNode(replica_id(2, 2), "east")
        for node in (src, local, b, c):
            net.register(node)
        return sim, net, src, local, b, c

    def test_duplicate_destinations_deduplicated(self, wan):
        sim, net, src, _local, b, c = self._fresh(wan)
        message = FakeMessage(size=1_000_000)
        net.multicast(src.node_id,
                      [b.node_id, b.node_id, c.node_id, b.node_id],
                      message)
        # One serialization per *distinct* destination: 2 MB on the WAN
        # egress, not 4 MB.
        assert net.uplink_backlog(src.node_id, "east") == pytest.approx(2.0)
        sim.run()
        assert len(b.received) == 1
        assert len(c.received) == 1

    def test_matches_unicast_sends_exactly(self, wan):
        message = FakeMessage(size=500_000)

        sim_m, net_m, src_m, local_m, b_m, c_m = self._fresh(wan)
        net_m.multicast(src_m.node_id,
                        [local_m.node_id, b_m.node_id, c_m.node_id], message)
        backlog_m = (net_m.uplink_backlog(src_m.node_id, "west"),
                     net_m.uplink_backlog(src_m.node_id, "east"))
        sim_m.run()

        sim_u, net_u, src_u, local_u, b_u, c_u = self._fresh(wan)
        for dst in (local_u, b_u, c_u):
            net_u.send(src_u.node_id, dst.node_id, message)
        backlog_u = (net_u.uplink_backlog(src_u.node_id, "west"),
                     net_u.uplink_backlog(src_u.node_id, "east"))
        sim_u.run()

        assert backlog_m == backlog_u
        assert sim_m.now == sim_u.now
        assert sim_m.events_processed == sim_u.events_processed
        for got, want in ((local_m, local_u), (b_m, b_u), (c_m, c_u)):
            assert len(got.received) == len(want.received) == 1

    def test_group_observer_sees_same_totals(self, wan):
        message = FakeMessage(size=2_000)
        per_send = []
        groups = []

        sim, net, src, local, b, c = self._fresh(wan)
        net.add_observer(
            lambda s, d, m, size, is_local:
                per_send.append((s, d, size, is_local)),
            lambda s, dsts, m, size, is_local:
                groups.append((s, tuple(dsts), size, is_local)))
        net.multicast(src.node_id,
                      [local.node_id, b.node_id, c.node_id], message)
        sim.run()

        # The sole observer's batched hook replaces per-send calls…
        assert per_send == []
        assert sorted(groups, key=lambda g: not g[3]) == [
            (src.node_id, (local.node_id,), 2_000, True),
            (src.node_id, (b.node_id, c.node_id), 2_000, False),
        ]
        # …and the grouped totals equal the per-destination totals.
        total_bytes = sum(size * len(dsts) for _, dsts, size, _ in groups)
        assert total_bytes == 3 * 2_000

    def test_second_observer_disables_group_path(self, wan):
        message = FakeMessage(size=2_000)
        first = []
        second = []
        groups = []

        sim, net, src, local, b, c = self._fresh(wan)
        net.add_observer(
            lambda s, d, m, size, is_local: first.append(d),
            lambda s, dsts, m, size, is_local: groups.append(tuple(dsts)))
        net.add_observer(lambda s, d, m, size, is_local: second.append(d))
        net.multicast(src.node_id,
                      [local.node_id, b.node_id, c.node_id], message)
        sim.run()

        # Both observers see the identical per-destination stream; the
        # batched hook is retired the moment it stops being sole.
        assert groups == []
        assert first == second
        assert sorted(first) == sorted(
            [local.node_id, b.node_id, c.node_id])
