"""The parallel engine: parity, merging, gates, and hygiene.

The digest-parity contract itself (parallel == serial, byte for byte,
across the 13-case golden matrix) lives in
``tests/test_scale_determinism.py``; this file covers everything around
it:

* partitioning and lookahead derivation (including the cluster-affinity
  narrowing for Steward's star topology),
* the serial-fallback gates — every configuration the parallel engine
  cannot reproduce bit-identically must be *detected*, and
  :func:`run_experiment` must silently use the serial engine for it,
* a chaos-timeline case (partition + Byzantine tamper) run on both
  engines with identical digests and invariant reports,
* deployment-wide counter merging (network telemetry, event counts),
* gc-state restoration around the run loop, and
* pickling of :class:`CachedEncodable` messages (the caches must travel
  with the message — re-deriving deep certificate chains on the
  receiving worker would dominate cross-worker cost).
"""

from __future__ import annotations

import dataclasses
import gc
import pickle

import pytest

from repro.bench.deployment import (Deployment, ExperimentConfig,
                                    deployment_digest, run_experiment)
from repro.bench.parallel import (
    PARALLEL_SAFE_SCENARIOS,
    cluster_affinity_pairs,
    lookahead_s,
    parallel_unsupported_reason,
    partition_clusters,
    run_parallel,
)
from repro.net.simulator import SimulationError, WorkerSimulation
from repro.net.chaos import (
    CrashFault,
    EquivocateFault,
    FaultTimeline,
    LinkDelayFault,
    MessageLossFault,
    PartitionFault,
    TamperFault,
)

SMALL = dict(protocol="geobft", num_clusters=2, replicas_per_cluster=4,
             batch_size=50, duration=1.0, warmup=0.25, seed=1,
             record_count=2_000, fast_crypto=True)


def small_config(**overrides) -> ExperimentConfig:
    return ExperimentConfig(**{**SMALL, **overrides})


def serial_run(config: ExperimentConfig, timeline=None):
    """Serial reference: fresh deployment, fresh fault objects."""
    deployment = Deployment(dataclasses.replace(config, workers=1))
    if timeline is not None:
        FaultTimeline.from_dict(timeline.to_dict()).install(deployment)
    result = deployment.run()
    return deployment, result


# ---------------------------------------------------------------------------
# Partitioning and lookahead
# ---------------------------------------------------------------------------
class TestPartitioning:
    def test_contiguous_balanced_split(self):
        assert partition_clusters(6, 2) == [(1, 2, 3), (4, 5, 6)]
        assert partition_clusters(6, 3) == [(1, 2), (3, 4), (5, 6)]
        assert partition_clusters(5, 2) == [(1, 2, 3), (4, 5)]

    def test_workers_clamped_to_cluster_count(self):
        assert partition_clusters(2, 8) == [(1,), (2,)]
        assert partition_clusters(3, 0) == [(1, 2, 3)]

    def test_lookahead_is_min_cross_worker_latency(self):
        config = small_config()
        topology = config.resolved_topology()
        parts = partition_clusters(2, 2)
        lookahead = lookahead_s(topology, parts)
        expected = topology.link(topology.regions[0],
                                 topology.regions[1]).latency_s
        assert lookahead == expected > 0.0

    def test_lookahead_zero_without_cross_worker_pair(self):
        config = small_config()
        assert lookahead_s(config.resolved_topology(), [(1, 2)]) == 0.0

    def test_steward_affinity_widens_lookahead(self):
        # Steward is a star around cluster 1: sites 2..4 never talk to
        # each other, so only the site<->primary links constrain the
        # window.  With clusters (1,2)|(3,4) split over two workers the
        # generic mesh would also include the (2,3)/(2,4) links.
        config = small_config(protocol="steward", num_clusters=4)
        topology = config.resolved_topology()
        parts = partition_clusters(4, 2)
        generic = lookahead_s(topology, parts)
        starred = lookahead_s(topology, parts,
                              cluster_affinity_pairs(config))
        assert starred >= generic > 0.0
        pairs = cluster_affinity_pairs(config)
        assert pairs == frozenset({(1, 2), (2, 1), (1, 3), (3, 1),
                                   (1, 4), (4, 1)})

    def test_geobft_affinity_is_all_to_all(self):
        config = small_config(num_clusters=3)
        pairs = cluster_affinity_pairs(config)
        assert pairs == frozenset({(a, b) for a in (1, 2, 3)
                                   for b in (1, 2, 3) if a != b})

    def test_flat_protocols_have_no_affinity_restriction(self):
        assert cluster_affinity_pairs(small_config(protocol="pbft")) is None


# ---------------------------------------------------------------------------
# Serial-fallback gates
# ---------------------------------------------------------------------------
class TestFallbackGates:
    def test_supported_configuration_has_no_reason(self):
        assert parallel_unsupported_reason(small_config(workers=2)) is None

    def test_workers_one_is_serial(self):
        reason = parallel_unsupported_reason(small_config(workers=1))
        assert "workers" in reason

    def test_single_cluster_cannot_be_partitioned(self):
        config = small_config(num_clusters=1, workers=2)
        assert "single-cluster" in parallel_unsupported_reason(config)

    def test_instrumented_runs_are_parallel_native(self):
        # Since the per-worker hub merge, instrumentation no longer
        # forces the serial engine.
        config = small_config(workers=2, instrument=True)
        assert parallel_unsupported_reason(config) is None

    def test_live_scenarios_stay_serial(self):
        config = small_config(workers=2)
        assert parallel_unsupported_reason(
            config, scenario="chaos_smoke") is not None
        for name in PARALLEL_SAFE_SCENARIOS:
            assert parallel_unsupported_reason(config,
                                               scenario=name) is None

    def test_stochastic_faults_stay_serial(self):
        config = small_config(workers=2)
        loss = FaultTimeline([MessageLossFault(rate=0.1, a="cluster:1",
                                               at=0.0)])
        assert "randomness" in parallel_unsupported_reason(
            config, timeline=loss)
        jitter = FaultTimeline([LinkDelayFault(
            extra_ms=5.0, jitter_ms=2.0, a="cluster:1", b="cluster:2",
            at=0.0)])
        assert "randomness" in parallel_unsupported_reason(
            config, timeline=jitter)

    def test_live_selectors_after_t0_stay_serial(self):
        config = small_config(workers=2)
        late_primary = FaultTimeline([CrashFault("primary:1", at=0.4)])
        assert "live selector" in parallel_unsupported_reason(
            config, timeline=late_primary)
        late_equivocate = FaultTimeline([EquivocateFault(1, at=0.4)])
        assert "live primary" in parallel_unsupported_reason(
            config, timeline=late_equivocate)
        # The same selectors at t=0 resolve against identical initial
        # state in every worker, which is safe.
        t0_primary = FaultTimeline([CrashFault("primary:1", at=0.0)])
        assert parallel_unsupported_reason(config,
                                           timeline=t0_primary) is None
        # Static selectors are safe at any time.
        static = FaultTimeline([CrashFault("replica:1.2", at=0.4)])
        assert parallel_unsupported_reason(config,
                                           timeline=static) is None

    def test_run_experiment_falls_back_silently(self):
        # Single cluster + workers=2: run_experiment must produce the
        # serial engine's exact result, not raise.
        config = small_config(num_clusters=1, workers=2, duration=0.6,
                              warmup=0.15)
        _, expected = serial_run(config)
        result = run_experiment(config)
        assert result.to_json() == expected.to_json()

    def test_run_parallel_rejects_unsupported_config(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            run_parallel(small_config(workers=1))


# ---------------------------------------------------------------------------
# Parity beyond the golden matrix
# ---------------------------------------------------------------------------
class TestChaosParity:
    def _timeline(self) -> FaultTimeline:
        # Partition + Byzantine tamper: static selectors only, so the
        # parallel gates accept it.
        return FaultTimeline([
            PartitionFault(["cluster:1"], ["cluster:2"],
                           at=0.3, until=0.55, name="split"),
            TamperFault("replica:1.2", at=0.2, name="tamper"),
        ], name="parallel-chaos")

    def test_partition_and_tamper_timeline_parity(self):
        config = small_config()
        timeline = self._timeline()
        assert parallel_unsupported_reason(
            dataclasses.replace(config, workers=2),
            timeline=timeline) is None

        deployment, result = serial_run(config, timeline=timeline)
        serial_digest = deployment_digest(deployment, result)
        serial_report = deployment.invariants

        run = run_parallel(dataclasses.replace(config, workers=2),
                           timeline=timeline)
        assert run.digest == serial_digest
        assert run.events_processed == deployment.sim.events_processed
        assert run.invariants.safety_ok == serial_report.safety_ok
        assert run.invariants.liveness_ok == serial_report.liveness_ok
        assert (run.invariants.liveness_failures
                == serial_report.liveness_failures)
        assert (run.invariants.byzantine_excluded
                == serial_report.byzantine_excluded)


class TestTieOrdering:
    """The composite tie key's serial-order semantics, unit-tested.

    The integration matrix exercises lockstep ties wholesale; these pin
    the one class it took a 256-replica sweep to surface — chains that
    *re-synchronize* after travelling different-latency paths — and the
    cross-worker ambiguity guard.
    """

    def test_resynchronized_chains_fire_in_poster_order(self):
        # Chain rank 3 posts a trigger at t=0.00 arriving at t=0.10;
        # chain rank 1 posts one at t=0.02 also arriving at t=0.10.
        # Serial fires the earlier-posted trigger first, so its
        # same-instant consequence must also fire first — even though
        # the other chain's rank is smaller.  (Regression: the rank
        # used to outrank the posters' order here, flipping two
        # same-instant GlobalShare forwards at 4x64 scale.)
        sim = WorkerSimulation(seed=0)
        order = []

        def consequence(tag):
            order.append(tag)

        def trigger(tag):
            sim.post(0.0, consequence, tag)

        sim.schedule_ranked(0.0, 3, lambda: sim.post(0.10, trigger, "a"))
        sim.schedule_ranked(0.02, 1, lambda: sim.post(0.08, trigger, "b"))
        sim.run(until=0.2)
        assert order == ["a", "b"]

    def test_lockstep_chains_still_fire_in_rank_order(self):
        # Chains in lockstep since the start wave (equal post time and
        # parent post time) keep the t=0 cluster order: rank decides.
        sim = WorkerSimulation(seed=0)
        order = []
        for rank, tag in ((2, "cluster2"), (1, "cluster1")):
            sim.schedule_ranked(0.05, rank, order.append, tag)
        sim.run(until=0.1)
        assert order == ["cluster1", "cluster2"]

    def test_cross_worker_ambiguous_tie_raises(self):
        # An import whose key ties a local event on everything but the
        # mint residue has no serial order; the drain must refuse.
        sim = WorkerSimulation(seed=0, worker_index=0, worker_count=2)
        sim.post(0.05, lambda: None)          # local tie (0.0, -1.0, 0, 0)
        sim.inject(0.05, (0.0, -1.0, 0, 1), lambda: None)
        with pytest.raises(SimulationError, match="ambiguous cross-worker"):
            sim.run(until=0.1)

    def test_distinct_post_times_are_never_ambiguous(self):
        # Same deadline, different post times: ordered by the key, so
        # the guard stays silent even across mint residues.
        sim = WorkerSimulation(seed=0, worker_index=0, worker_count=2)
        fired = []
        sim.post(0.05, fired.append, "local")
        sim.inject(0.05, (0.01, 0.0, 1, 1), fired.append, "import")
        sim.run(until=0.1)
        assert fired == ["local", "import"]


class TestMergedCounters:
    @pytest.fixture(scope="class")
    def runs(self):
        config = small_config()
        deployment, result = serial_run(config)
        run = run_parallel(dataclasses.replace(config, workers=2))
        return deployment, result, run

    def test_digest_and_events_match_serial(self, runs):
        deployment, result, run = runs
        assert run.digest == deployment_digest(deployment, result)
        assert run.events_processed == deployment.sim.events_processed

    def test_network_telemetry_merges_to_serial_totals(self, runs):
        deployment, _, run = runs
        assert run.telemetry == deployment.network.telemetry()

    def test_queue_depth_is_per_worker_maximum(self, runs):
        deployment, _, run = runs
        # Each worker holds only its own clusters' events, so the merged
        # (max-over-workers) depth can never exceed the serial queue's.
        assert 0 < run.max_queue_depth <= deployment.sim.max_queue_depth

    def test_result_object_matches_serial(self, runs):
        _, result, run = runs
        assert run.result.to_json() == result.to_json()


# ---------------------------------------------------------------------------
# gc hygiene
# ---------------------------------------------------------------------------
class TestGcRestoration:
    def test_serial_run_restores_enabled_gc(self):
        config = small_config(duration=0.4, warmup=0.1, num_clusters=1)
        assert gc.isenabled()
        serial_run(config)
        assert gc.isenabled()

    def test_serial_run_preserves_disabled_gc(self):
        # A caller that already disabled gc (e.g. an outer benchmark
        # harness) must not have it re-enabled behind its back.
        config = small_config(duration=0.4, warmup=0.1, num_clusters=1)
        gc.disable()
        try:
            serial_run(config)
            assert not gc.isenabled()
        finally:
            gc.enable()

    def test_serial_run_restores_gc_on_failure(self):
        from repro.errors import SimulationError
        from repro.net.simulator import Simulation

        sim = Simulation(seed=1)

        def boom() -> None:
            raise SimulationError("injected")

        sim.schedule(0.01, boom)
        assert gc.isenabled()
        with pytest.raises(SimulationError):
            sim.run(until=0.1)
        assert gc.isenabled()

    def test_parallel_run_leaves_parent_gc_alone(self):
        assert gc.isenabled()
        run_parallel(small_config(workers=2, duration=0.5, warmup=0.1))
        assert gc.isenabled()


# ---------------------------------------------------------------------------
# Message pickling (the cross-worker wire format)
# ---------------------------------------------------------------------------
class TestMessagePickling:
    def test_cached_encodable_caches_survive_pickling(self):
        from repro.consensus.messages import Prepare
        from repro.types import replica_id

        message = Prepare(1, 0, 7, b"\x01" * 32, replica_id(1, 2))
        # Warm every cache slot the way the serial hot path does.
        encoded = message.encoded()
        digest = message.payload_digest()
        size = message.size_bytes()

        clone = pickle.loads(pickle.dumps(message))
        assert clone.encoded() == encoded
        assert clone.payload_digest() == digest
        assert clone.size_bytes() == size
        # The caches themselves travelled: no re-derivation slot is
        # empty on the receiving side.
        assert object.__getattribute__(clone, "_encoded_cache") == encoded
        assert object.__getattribute__(clone,
                                       "_payload_digest_cache") == digest

    def test_unwarmed_message_pickles_without_caches(self):
        from repro.consensus.messages import Prepare
        from repro.types import replica_id

        message = Prepare(1, 0, 7, b"\x02" * 32, replica_id(1, 3))
        clone = pickle.loads(pickle.dumps(message))
        assert clone.payload() == message.payload()
