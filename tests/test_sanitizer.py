"""Tests for the message-aliasing sanitizer (``REPRO_SANITIZE=1``).

The failure mode under test: the simulator passes message objects by
reference, so a handler that mutates a message after posting it corrupts
what every other receiver observes — silently, because the canonical
encoding cache keeps serving the pre-mutation bytes.  The sanitizer must
catch exactly that (with a pointed error naming type and sender) while
leaving scheduling, and therefore deployment digests, untouched.
"""

from __future__ import annotations

import pytest

from repro.bench.deployment import (Deployment, ExperimentConfig,
                                    deployment_digest)
from repro.consensus.messages import Prepare
from repro.errors import MessageAliasingError
from repro.net.network import Network
from repro.net.sanitizer import (MessageSanitizer, live_fingerprint,
                                 sanitize_enabled)
from repro.net.simulator import Simulation
from repro.net.topology import Topology
from repro.types import replica_id


class FakeNode:
    def __init__(self, node_id, region):
        self.node_id = node_id
        self.region = region
        self.received = []

    def deliver(self, message, sender):
        self.received.append((message, sender))


@pytest.fixture
def wan():
    return Topology.custom(
        ["west", "east"],
        {("west", "west"): 1.0, ("east", "east"): 1.0,
         ("west", "east"): 100.0},
        {("west", "west"): 8.0, ("east", "east"): 8.0,
         ("west", "east"): 8.0},
    )


def build(wan, sanitize):
    sim = Simulation(seed=1)
    net = Network(sim, wan, sanitize=sanitize)
    a = FakeNode(replica_id(1, 1), "west")
    b = FakeNode(replica_id(1, 2), "west")
    c = FakeNode(replica_id(2, 1), "east")
    for node in (a, b, c):
        net.register(node)
    return sim, net, a, b, c


def prepare_message():
    return Prepare(1, 0, 7, b"d" * 32, replica_id(1, 1))


def mutate(message):
    # Frozen dataclass: protocol code cannot do this by accident with
    # ``msg.digest = ...`` — but buggy code using replace()-free rebuild
    # helpers, object.__setattr__, or mutable payload members can.
    object.__setattr__(message, "digest", b"X" * 32)


class TestDetection:
    def test_post_send_mutation_is_caught(self, wan):
        sim, net, a, b, _c = build(wan, sanitize=True)
        msg = prepare_message()
        net.send(a.node_id, b.node_id, msg)
        mutate(msg)
        with pytest.raises(MessageAliasingError) as excinfo:
            sim.run()
        # The error names the message type and the sending node.
        text = str(excinfo.value)
        assert "Prepare" in text
        assert str(a.node_id) in text

    def test_mutation_is_caught_even_after_encoding_was_cached(self, wan):
        # The whole reason live_fingerprint exists: once encoded() has
        # memoized the canonical bytes, digests and signatures keep
        # reporting the pre-mutation state, so only an uncached re-walk
        # can see the change.
        sim, net, a, b, _c = build(wan, sanitize=True)
        msg = prepare_message()
        msg.encoded()  # warm the instance cache
        net.send(a.node_id, b.node_id, msg)
        mutate(msg)
        assert msg.encoded() == Prepare(
            1, 0, 7, b"d" * 32, replica_id(1, 1)).encoded()  # cache is stale
        with pytest.raises(MessageAliasingError):
            sim.run()

    def test_mutation_is_caught_on_grouped_multicast_path(self, wan):
        # Two same-region destinations share one grouped delivery event;
        # the check must run there too.
        sim, net, a, b, c = build(wan, sanitize=True)
        msg = prepare_message()
        net.multicast(a.node_id, [b.node_id, c.node_id], msg)
        mutate(msg)
        with pytest.raises(MessageAliasingError):
            sim.run()

    def test_self_send_path_is_checked(self, wan):
        sim, net, a, _b, _c = build(wan, sanitize=True)
        msg = prepare_message()
        net.send(a.node_id, a.node_id, msg)
        mutate(msg)
        with pytest.raises(MessageAliasingError):
            sim.run()

    def test_unmutated_traffic_passes_and_is_counted(self, wan):
        sim, net, a, b, c = build(wan, sanitize=True)
        net.multicast(a.node_id, [a.node_id, b.node_id, c.node_id],
                      prepare_message())
        sim.run()
        assert len(a.received) == len(b.received) == len(c.received) == 1
        assert net.telemetry()["sanitizer_checks"] >= 3

    def test_sanitizer_off_ignores_mutation(self, wan):
        sim, net, a, b, _c = build(wan, sanitize=False)
        msg = prepare_message()
        net.send(a.node_id, b.node_id, msg)
        mutate(msg)
        sim.run()
        assert len(b.received) == 1
        assert "sanitizer_checks" not in net.telemetry()


class TestSwitch:
    def test_explicit_argument_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled(False) is False
        monkeypatch.delenv("REPRO_SANITIZE")
        assert sanitize_enabled(True) is True

    def test_environment_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize_enabled() is False
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled() is True
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert sanitize_enabled() is False


class TestFingerprint:
    def test_fingerprint_tracks_live_payload(self):
        msg = prepare_message()
        before = live_fingerprint(msg)
        msg.encoded()
        assert live_fingerprint(msg) == before  # caching is invisible
        mutate(msg)
        assert live_fingerprint(msg) != before

    def test_distinct_types_with_equal_payload_differ(self):
        # Type name is folded in, so two message classes that happen to
        # encode the same tree still get distinct fingerprints.
        class A:
            def payload(self):
                return ("x", 1)

        class B:
            def payload(self):
                return ("x", 1)

        assert live_fingerprint(A()) != live_fingerprint(B())

    def test_foreign_objects_do_not_crash(self):
        class Opaque:
            pass

        fp = live_fingerprint(Opaque())
        assert isinstance(fp, bytes) and len(fp) == 32

    def test_checker_counts_checks_and_violations(self):
        sanitizer = MessageSanitizer()
        msg = prepare_message()
        fp = sanitizer.fingerprint(msg)
        sanitizer.check(msg, fp, replica_id(1, 1))
        mutate(msg)
        with pytest.raises(MessageAliasingError):
            sanitizer.check(msg, fp, replica_id(1, 1))
        assert sanitizer.checks == 2
        assert sanitizer.violations == 1


class TestDigestParity:
    """The acceptance gate: sanitized runs reproduce golden digests."""

    # Mirrors tests/test_scale_determinism.py SMALL_MATRIX["geobft", 1].
    GOLDEN = "7f6bfe45e2e7c6fd78134fdcb6915b08f2b492b7cc8abf983b9604276ca2762c"
    EVENTS = 165438

    def test_sanitized_run_matches_golden_digest(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        deployment = Deployment(ExperimentConfig(
            protocol="geobft", num_clusters=2, replicas_per_cluster=4,
            batch_size=50, duration=1.0, warmup=0.25, seed=1,
            record_count=2_000, fast_crypto=True))
        result = deployment.run()
        assert result.safety_ok
        assert deployment.sim.events_processed == self.EVENTS
        assert deployment_digest(deployment, result) == self.GOLDEN
        # The sanitizer really was armed for the run.
        checks = deployment.network.telemetry().get("sanitizer_checks", 0)
        assert checks > 0
