"""Tests for the benchmark harness: metrics, deployment building,
failure scenarios, reporting, and complexity analysis."""

import pytest

from repro.analysis.complexity import analytic_complexity, measured_complexity
from repro.bench.deployment import (
    PROTOCOLS,
    Deployment,
    ExperimentConfig,
    run_experiment,
)
from repro.bench.metrics import Metrics
from repro.bench.reporting import (
    format_figure_series,
    format_table,
    summarize_results,
)
from repro.bench.scenarios import apply_scenario
from repro.errors import ConfigurationError
from repro.types import client_id, replica_id


class TestMetrics:
    def test_throughput_excludes_warmup(self):
        metrics = Metrics(warmup=10.0)
        metrics.record_completed(client_id(1, 1), 100, 0.5, now=5.0)
        metrics.record_completed(client_id(1, 1), 100, 0.5, now=15.0)
        metrics.finish(20.0)
        assert metrics.throughput_txn_s() == pytest.approx(10.0)
        assert metrics.completed_txns == 200

    def test_latency_statistics(self):
        metrics = Metrics(warmup=0.0)
        for latency in (0.1, 0.2, 0.9):
            metrics.record_completed(client_id(1, 1), 1, latency, now=1.0)
        metrics.finish(2.0)
        assert metrics.avg_latency_s() == pytest.approx(0.4)
        assert metrics.p50_latency_s() == pytest.approx(0.2)

    def test_empty_metrics_are_zero(self):
        metrics = Metrics()
        metrics.finish(0.0)
        assert metrics.throughput_txn_s() == 0.0
        assert metrics.avg_latency_s() == 0.0
        assert metrics.p50_latency_s() == 0.0

    def test_network_observer_classifies_traffic(self):
        metrics = Metrics()

        class Msg:
            pass

        metrics.network_observer(replica_id(1, 1), replica_id(1, 2), Msg(),
                                 100, True)
        metrics.network_observer(replica_id(1, 1), replica_id(2, 1), Msg(),
                                 300, False)
        assert metrics.local_messages == 1
        assert metrics.global_messages == 1
        assert metrics.local_bytes == 100
        assert metrics.global_bytes == 300
        assert metrics.message_counts()["Msg"] == {"local": 1, "global": 1}

    def test_executed_txn_accounting(self):
        metrics = Metrics()
        metrics.record_executed(replica_id(1, 1), 10, 1.0)
        metrics.record_executed(replica_id(1, 1), 10, 2.0)
        metrics.record_executed(replica_id(1, 2), 5, 2.0)
        assert metrics.executed_txns(replica_id(1, 1)) == 20
        assert metrics.total_executed_txns() == 25


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.protocol in PROTOCOLS

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(protocol="raft")

    def test_cluster_bounds(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_clusters=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(replicas_per_cluster=3)

    def test_warmup_before_duration(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(duration=1.0, warmup=2.0)

    def test_topology_defaults_to_paper_prefix(self):
        config = ExperimentConfig(num_clusters=3)
        assert config.resolved_topology().regions == (
            "oregon", "iowa", "montreal")


class TestDeploymentBuilding:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_builds_every_protocol(self, protocol):
        config = ExperimentConfig(
            protocol=protocol, num_clusters=2, replicas_per_cluster=4,
            batch_size=2, clients_per_cluster=1, duration=1.0, warmup=0.2,
            record_count=100,
        )
        deployment = Deployment(config)
        assert len(deployment.replicas) == 8
        assert len(deployment.clients) == 2
        assert set(deployment.cluster_members) == {1, 2}

    def test_replicas_placed_in_paper_regions(self):
        config = ExperimentConfig(
            protocol="geobft", num_clusters=2, replicas_per_cluster=4,
            duration=1.0, warmup=0.2,
        )
        deployment = Deployment(config)
        r11 = deployment.replicas[replica_id(1, 1)]
        r21 = deployment.replicas[replica_id(2, 1)]
        assert r11.region == "oregon"
        assert r21.region == "iowa"

    def test_run_experiment_returns_result(self):
        result = run_experiment(ExperimentConfig(
            protocol="geobft", num_clusters=2, replicas_per_cluster=4,
            batch_size=3, clients_per_cluster=1, client_outstanding=2,
            duration=1.5, warmup=0.3, record_count=100, fast_crypto=True,
        ))
        assert result.throughput_txn_s > 0
        assert result.safety_ok
        assert "geobft" in result.describe()

    def test_fast_crypto_matches_real_crypto_results(self):
        """fast_crypto only saves host CPU: simulated outcomes match."""
        base = dict(
            protocol="geobft", num_clusters=2, replicas_per_cluster=4,
            batch_size=3, clients_per_cluster=1, client_outstanding=2,
            duration=1.5, warmup=0.3, record_count=100, seed=5,
        )
        real = run_experiment(ExperimentConfig(**base, fast_crypto=False))
        fast = run_experiment(ExperimentConfig(**base, fast_crypto=True))
        assert fast.throughput_txn_s == pytest.approx(real.throughput_txn_s)
        assert fast.avg_latency_s == pytest.approx(real.avg_latency_s)
        assert fast.global_messages == real.global_messages


class TestScenarios:
    def _deployment(self, protocol="geobft"):
        return Deployment(ExperimentConfig(
            protocol=protocol, num_clusters=2, replicas_per_cluster=4,
            batch_size=3, clients_per_cluster=1, duration=2.0, warmup=0.4,
            record_count=100,
        ))

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_scenario(self._deployment(), "meteor-strike")

    def test_none_scenario_is_noop(self):
        deployment = self._deployment()
        assert apply_scenario(deployment, "none") == []
        assert not deployment.network.failures.crashed_nodes

    def test_one_backup(self):
        deployment = self._deployment()
        victims = apply_scenario(deployment, "one_backup")
        assert victims == [replica_id(2, 4)]
        assert deployment.network.failures.is_crashed(replica_id(2, 4))

    def test_f_backups_per_cluster(self):
        deployment = self._deployment()
        victims = apply_scenario(deployment, "f_backups")
        assert set(victims) == {replica_id(1, 4), replica_id(2, 4)}

    def test_primary_failure_scheduled(self):
        deployment = self._deployment()
        victims = apply_scenario(deployment, "primary", fail_at=1.0)
        assert victims == [replica_id(1, 1)]
        assert not deployment.network.failures.is_crashed(replica_id(1, 1))
        deployment.sim.run(until=1.5)
        assert deployment.network.failures.is_crashed(replica_id(1, 1))

    def test_victims_never_include_initial_primaries(self):
        deployment = self._deployment()
        victims = apply_scenario(deployment, "f_backups")
        assert replica_id(1, 1) not in victims
        assert replica_id(2, 1) not in victims


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_figure_series(self):
        text = format_figure_series(
            "Figure X", "z", [1, 2],
            {"geobft": [10.0, 20.0], "pbft": [5.0, 4.0]}, "txn/s")
        assert "Figure X" in text
        assert "geobft" in text and "pbft" in text

    def test_summarize_results(self):
        result = run_experiment(ExperimentConfig(
            protocol="pbft", num_clusters=2, replicas_per_cluster=4,
            batch_size=3, clients_per_cluster=1, client_outstanding=2,
            duration=1.2, warmup=0.3, record_count=100, fast_crypto=True,
        ))
        text = summarize_results([result])
        assert "pbft" in text
        assert "tput (txn/s)" in text


class TestComplexityAnalysis:
    def test_geobft_row_matches_paper_form(self):
        row = analytic_complexity("geobft", z=4, n=7)
        assert row.decisions_per_round == 4
        assert row.centralized == "no"
        # Global messages: z(z-1)(f+1) = 4*3*3 = 36.
        assert row.global_messages == 36

    def test_pbft_quadratic_in_total_replicas(self):
        row = analytic_complexity("pbft", z=4, n=7)
        assert row.global_messages == 2 * 28 * 28

    def test_geobft_global_cost_beats_pbft(self):
        """Table 2's headline: GeoBFT has the lowest global cost."""
        for z in (2, 4, 6):
            for n in (4, 7, 13):
                geo = analytic_complexity("geobft", z, n)
                pbft = analytic_complexity("pbft", z, n)
                steward = analytic_complexity("steward", z, n)
                assert (geo.per_decision_global()
                        < pbft.per_decision_global())
                assert (geo.per_decision_global()
                        <= steward.per_decision_global() * z)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            analytic_complexity("raft", 2, 4)

    def test_measured_complexity(self):
        result = measured_complexity(100, 50, decisions=10)
        assert result["local_per_decision"] == 10.0
        assert result["global_per_decision"] == 5.0
        zero = measured_complexity(100, 50, decisions=0)
        assert zero["global_per_decision"] == 0.0
