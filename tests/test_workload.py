"""Tests for the Zipfian generators and the YCSB workload."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.ycsb import YcsbWorkload
from repro.workload.zipfian import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    make_generator,
    zeta,
)


class TestZeta:
    def test_known_values(self):
        assert zeta(1, 0.99) == pytest.approx(1.0)
        assert zeta(2, 0.5) == pytest.approx(1.0 + 1 / 2 ** 0.5)

    def test_monotone_in_n(self):
        assert zeta(100, 0.99) < zeta(200, 0.99)

    def test_memoized(self):
        assert zeta(1000, 0.99) is not None
        assert zeta(1000, 0.99) == zeta(1000, 0.99)


class TestGenerators:
    @pytest.mark.parametrize("cls", [UniformGenerator, ZipfianGenerator,
                                     ScrambledZipfianGenerator])
    def test_keys_in_range(self, cls):
        gen = cls(1000, random.Random(1))
        for _ in range(2000):
            assert 0 <= gen.next() < 1000

    def test_zipfian_is_skewed(self):
        gen = ZipfianGenerator(10_000, random.Random(2))
        draws = [gen.next() for _ in range(20_000)]
        top_10 = sum(1 for d in draws if d < 10)
        # With theta=0.99 the 10 hottest of 10k keys get a large share;
        # uniform would give ~0.1%.
        assert top_10 / len(draws) > 0.2

    def test_uniform_is_not_skewed(self):
        gen = UniformGenerator(10_000, random.Random(2))
        draws = [gen.next() for _ in range(20_000)]
        top_10 = sum(1 for d in draws if d < 10)
        assert top_10 / len(draws) < 0.01

    def test_scrambled_spreads_hot_keys(self):
        gen = ScrambledZipfianGenerator(10_000, random.Random(3))
        draws = [gen.next() for _ in range(5_000)]
        # Hot keys exist but are not concentrated at low ids.
        assert sum(1 for d in draws if d < 10) / len(draws) < 0.05

    def test_deterministic_per_seed(self):
        a = ZipfianGenerator(1000, random.Random(9))
        b = ZipfianGenerator(1000, random.Random(9))
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]

    def test_factory(self):
        rng = random.Random(0)
        assert isinstance(make_generator("uniform", 10, rng),
                          UniformGenerator)
        assert isinstance(make_generator("zipfian", 10, rng),
                          ZipfianGenerator)
        assert isinstance(make_generator("scrambled_zipfian", 10, rng),
                          ScrambledZipfianGenerator)
        with pytest.raises(WorkloadError):
            make_generator("pareto", 10, rng)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ZipfianGenerator(0, random.Random(0))
        with pytest.raises(WorkloadError):
            ZipfianGenerator(10, random.Random(0), theta=1.5)
        with pytest.raises(WorkloadError):
            UniformGenerator(0, random.Random(0))

    @given(st.integers(min_value=1, max_value=10_000),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=30)
    def test_zipfian_bounds_property(self, n, seed):
        gen = ZipfianGenerator(n, random.Random(seed))
        for _ in range(50):
            assert 0 <= gen.next() < n


class TestYcsbWorkload:
    def test_write_only_default(self):
        wl = YcsbWorkload(record_count=100, seed=1)
        txns = [wl.next_txn() for _ in range(100)]
        assert all(t.op == "update" for t in txns)

    def test_mixed_workload(self):
        wl = YcsbWorkload(record_count=100, write_fraction=0.5, seed=1)
        ops = {wl.next_txn().op for _ in range(200)}
        assert ops == {"update", "read"}

    def test_txn_ids_unique(self):
        wl = YcsbWorkload(record_count=100, seed=1)
        ids = [wl.next_txn().txn_id for _ in range(500)]
        assert len(set(ids)) == len(ids)

    def test_batches(self):
        wl = YcsbWorkload(record_count=100, seed=1)
        b = wl.next_batch(10, prefix="c1-")
        assert len(b) == 10
        assert all(t.txn_id.startswith("c1-") for t in b)
        assert wl.generated_txns == 10

    def test_batch_size_validation(self):
        wl = YcsbWorkload(record_count=100, seed=1)
        with pytest.raises(WorkloadError):
            wl.next_batch(0)

    def test_invalid_write_fraction(self):
        with pytest.raises(WorkloadError):
            YcsbWorkload(write_fraction=1.5)

    def test_value_size(self):
        wl = YcsbWorkload(record_count=10, value_size=32, seed=1)
        assert len(wl.next_txn().value) == 32

    def test_deterministic_per_seed(self):
        w1 = YcsbWorkload(record_count=100, seed=5)
        w2 = YcsbWorkload(record_count=100, seed=5)
        assert w1.next_batch(20) == w2.next_batch(20)

    def test_keys_within_active_set(self):
        wl = YcsbWorkload(record_count=50, seed=2)
        for _ in range(500):
            assert 0 <= wl.next_txn().key < 50
