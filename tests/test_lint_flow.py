"""Tests for the interprocedural lint layer: planted-defect fixtures
for the three whole-program rule families (message flow, verify taint,
quorum arithmetic), the per-protocol golden flow graphs, and the CLI
surface (``--flow-report`` / ``--flow-dot`` / ``--changed``)."""

from __future__ import annotations

import ast
import json
import os
import subprocess
import textwrap
from pathlib import Path

from repro.cli import main as cli_main
from repro.lint import extract_flows, flow_dot, flow_report
from repro.lint.engine import discover_files, lint_source
from repro.lint.msgflow import (FlowDeadHandler, FlowOrphanMessage,
                                FlowSpecDivergence)
from repro.lint.quorum import QuorumArithmetic
from repro.lint.specs import MessageSpec, ProtocolSpec
from repro.lint.symbols import build_index
from repro.lint.taint import VerifyTaint

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src" / "repro")
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

FIXTURE_PATH = "repro/consensus/fixture.py"


def _toy_spec(messages=(), name="toy"):
    return ProtocolSpec(name=name, modules=(FIXTURE_PATH,),
                        phases=("only",), quorum_classes=("n-f",),
                        messages=tuple(messages))


def _flow_findings(rule_cls, source, messages=()):
    rule = rule_cls(protocol_specs=(_toy_spec(messages),),
                    message_modules=(FIXTURE_PATH,))
    report = lint_source(textwrap.dedent(source), path=FIXTURE_PATH,
                         rules=[rule])
    return report.findings


# ---------------------------------------------------------------------------
# Rule: flow-orphan-message
# ---------------------------------------------------------------------------
ORPHAN_BAD = """
    class CachedEncodable:
        pass

    class Ping(CachedEncodable):
        pass

    class Engine:
        def _announce(self):
            self.net.broadcast(self.members, Ping())
"""


class TestFlowOrphanMessage:
    def test_fires_on_wire_message_without_consumer(self):
        found = _flow_findings(FlowOrphanMessage, ORPHAN_BAD)
        assert len(found) == 1
        assert found[0].rule == "flow-orphan-message"
        assert "Ping" in found[0].message
        assert "broadcast" in found[0].message

    def test_quiet_when_a_handler_exists(self):
        good = ORPHAN_BAD + """
    class Peer:
        def _on_ping(self, msg: Ping, sender):
            self.seen = msg

        def handle(self, message, sender):
            if isinstance(message, Ping):
                self._on_ping(message, sender)
"""
        assert not _flow_findings(FlowOrphanMessage, good)

    def test_quiet_on_local_only_message(self):
        local = """
            class CachedEncodable:
                pass

            class Note(CachedEncodable):
                pass

            class Engine:
                def _record(self):
                    note = Note()
                    self.log.append(note)
        """
        assert not _flow_findings(FlowOrphanMessage, local)

    def test_external_spec_entry_exempts(self):
        spec = MessageSpec("Ping", "only",
                           producers=("Engine._announce",),
                           consumers=(), fanout=("broadcast",),
                           external=True)
        assert not _flow_findings(FlowOrphanMessage, ORPHAN_BAD, [spec])


# ---------------------------------------------------------------------------
# Rule: flow-dead-handler
# ---------------------------------------------------------------------------
class TestFlowDeadHandler:
    def test_fires_on_unreferenced_handler(self):
        bad = """
            class CachedEncodable:
                pass

            class Ping(CachedEncodable):
                pass

            class Engine:
                def handle(self, message, sender):
                    return None  # dispatch ladder forgot Ping

                def _on_ping(self, msg: Ping, sender):
                    self.seen = msg
        """
        found = _flow_findings(FlowDeadHandler, bad)
        assert len(found) == 1
        assert found[0].rule == "flow-dead-handler"
        assert "_on_ping" in found[0].message

    def test_quiet_when_dispatcher_references_handler(self):
        good = """
            class CachedEncodable:
                pass

            class Ping(CachedEncodable):
                pass

            class Engine:
                def handle(self, message, sender):
                    if isinstance(message, Ping):
                        self._on_ping(message, sender)

                def _on_ping(self, msg: Ping, sender):
                    self.seen = msg
        """
        assert not _flow_findings(FlowDeadHandler, good)

    def test_quiet_on_handler_without_message_annotation(self):
        good = """
            class CachedEncodable:
                pass

            class Engine:
                def _on_timer(self, deadline):
                    self.deadline = deadline
        """
        assert not _flow_findings(FlowDeadHandler, good)


# ---------------------------------------------------------------------------
# Rule: flow-spec-divergence
# ---------------------------------------------------------------------------
HANDLED_PING = """
    class CachedEncodable:
        pass

    class Ping(CachedEncodable):
        pass

    class Engine:
        def _announce(self):
            self.net.broadcast(self.members, Ping())

        def handle(self, message, sender):
            if isinstance(message, Ping):
                self._on_ping(message, sender)

        def _on_ping(self, msg: Ping, sender):
            self.seen = msg
"""

PING_SPEC = MessageSpec("Ping", "only",
                        producers=("Engine._announce",),
                        consumers=("Engine._on_ping",),
                        fanout=("broadcast",))


class TestFlowSpecDivergence:
    def test_quiet_when_spec_matches(self):
        assert not _flow_findings(FlowSpecDivergence, HANDLED_PING,
                                  [PING_SPEC])

    def test_fires_on_undeclared_message(self):
        found = _flow_findings(FlowSpecDivergence, HANDLED_PING)
        assert len(found) == 1
        assert "not declared" in found[0].message

    def test_fires_on_undeclared_producer(self):
        drifted = HANDLED_PING + """
    class Rogue:
        def _resend(self):
            self.net.broadcast(self.members, Ping())
"""
        found = _flow_findings(FlowSpecDivergence, drifted, [PING_SPEC])
        assert len(found) == 1
        assert "undeclared producers" in found[0].message
        assert "Rogue._resend" in found[0].message

    def test_fires_on_missing_consumer(self):
        spec = MessageSpec("Ping", "only",
                           producers=("Engine._announce",),
                           consumers=("Engine._on_ping",
                                      "Engine._on_ping_v2"),
                           fanout=("broadcast",))
        found = _flow_findings(FlowSpecDivergence, HANDLED_PING, [spec])
        assert len(found) == 1
        assert "missing consumers" in found[0].message

    def test_fires_on_fanout_drift(self):
        spec = MessageSpec("Ping", "only",
                           producers=("Engine._announce",),
                           consumers=("Engine._on_ping",),
                           fanout=("unicast",))
        found = _flow_findings(FlowSpecDivergence, HANDLED_PING, [spec])
        assert len(found) == 1
        assert "fan-out" in found[0].message

    def test_fires_on_declared_but_absent_message(self):
        ghost = MessageSpec("Ghost", "only", producers=("Engine._x",),
                            consumers=(), fanout=("broadcast",))
        found = _flow_findings(FlowSpecDivergence, HANDLED_PING,
                               [PING_SPEC, ghost])
        assert len(found) == 1
        assert "never appears" in found[0].message


# ---------------------------------------------------------------------------
# Rule: verify-taint (interprocedural verify-before-mutate)
# ---------------------------------------------------------------------------
def _taint_findings(source):
    rule = VerifyTaint(modules=(FIXTURE_PATH,))
    report = lint_source(textwrap.dedent(source), path=FIXTURE_PATH,
                         rules=[rule])
    return report.findings


class TestVerifyTaint:
    def test_fires_on_helper_delegated_premature_mutation(self):
        bad = """
            class Engine:
                def _slot(self, seq):
                    entry = self._slots.get(seq)
                    if entry is None:
                        entry = self._slots[seq] = {}
                    return entry

                def _on_preprepare(self, msg, sender):
                    slot = self._slot(msg.seq)
                    if not self._verify_request(msg.request):
                        return
                    slot["msg"] = msg
        """
        found = _taint_findings(bad)
        assert len(found) == 1
        assert found[0].rule == "verify-taint"
        assert "Engine._slot" in found[0].message

    def test_follows_two_level_delegation(self):
        bad = """
            class Engine:
                def _store(self, seq):
                    self._slots[seq] = {}

                def _slot(self, seq):
                    self._store(seq)

                def _on_preprepare(self, msg, sender):
                    self._slot(msg.seq)
                    if not self._verify_request(msg.request):
                        return
        """
        assert _taint_findings(bad)

    def test_quiet_when_verify_dominates(self):
        good = """
            class Engine:
                def _slot(self, seq):
                    entry = self._slots.get(seq)
                    if entry is None:
                        entry = self._slots[seq] = {}
                    return entry

                def _on_preprepare(self, msg, sender):
                    if not self._verify_request(msg.request):
                        return
                    slot = self._slot(msg.seq)
                    slot["msg"] = msg
        """
        assert not _taint_findings(good)

    def test_quiet_when_helper_is_pure(self):
        good = """
            class Engine:
                def _digest(self, msg):
                    return hash(msg.payload)

                def _on_preprepare(self, msg, sender):
                    digest = self._digest(msg)
                    if not self._verify_request(msg.request):
                        return
                    self._slots[msg.seq] = digest
        """
        assert not _taint_findings(good)

    def test_exempts_handlers_without_verification(self):
        good = """
            class Engine:
                def _slot(self, seq):
                    self._slots[seq] = {}

                def _on_prepare(self, msg, sender):
                    self._slot(msg.seq)
        """
        assert not _taint_findings(good)


# ---------------------------------------------------------------------------
# Rule: quorum-arithmetic
# ---------------------------------------------------------------------------
def _quorum_findings(source, allowed=("n-f", "f+1")):
    rule = QuorumArithmetic(module_classes={FIXTURE_PATH: tuple(allowed)})
    report = lint_source(textwrap.dedent(source), path=FIXTURE_PATH,
                         rules=[rule])
    return report.findings


class TestQuorumArithmetic:
    def test_fires_on_magic_number_threshold(self):
        bad = """
            class Engine:
                def _check(self, votes):
                    if len(votes) >= 3:
                        self.decide()
        """
        found = _quorum_findings(bad)
        assert len(found) == 1
        assert found[0].rule == "quorum-arithmetic"
        assert "'3'" in found[0].message

    def test_fires_on_off_by_one_f_comparison(self):
        bad = """
            class Engine:
                def _check(self, votes):
                    if len(votes) >= self._f:
                        self.decide()
        """
        found = _quorum_findings(bad)
        assert len(found) == 1
        assert "off-by-one" in found[0].message

    def test_strict_f_comparison_is_the_f_plus_1_class(self):
        good = """
            class Engine:
                def _check(self, votes):
                    if len(votes) > self._f:
                        self.decide()
        """
        assert not _quorum_findings(good)

    def test_fires_on_class_not_declared_for_module(self):
        bad = """
            class Engine:
                def _check(self, votes):
                    need = 2 * self._f + 1
                    if len(votes) >= need:
                        self.decide()
        """
        found = _quorum_findings(bad, allowed=("n-f",))
        assert len(found) == 1
        assert "'2f+1'" in found[0].message

    def test_quiet_on_declared_n_minus_f(self):
        good = """
            class Engine:
                def __init__(self, n, f):
                    self._n = n
                    self._f = f
                    self._quorum = self._n - self._f

                def _check(self, votes):
                    if len(votes) >= self._quorum:
                        self.decide()
        """
        assert not _quorum_findings(good)

    def test_fires_on_unreducible_quorum_declaration(self):
        bad = """
            class Engine:
                def __init__(self):
                    self._quorum = 7
        """
        found = _quorum_findings(bad)
        assert len(found) == 1
        assert "declaration" in found[0].message

    def test_count_vs_count_is_exempt(self):
        good = """
            class Engine:
                def _memo(self, cert, signers):
                    if len(signers) > cert.verified:
                        cert.verified = len(signers)
        """
        assert not _quorum_findings(good)

    def test_quiet_outside_declared_modules(self):
        bad = """
            class Engine:
                def _check(self, votes):
                    if len(votes) >= 3:
                        self.decide()
        """
        rule = QuorumArithmetic(module_classes={FIXTURE_PATH: ("n-f",)})
        report = lint_source(textwrap.dedent(bad),
                             path="repro/bench/tool.py", rules=[rule])
        assert not report.findings


# ---------------------------------------------------------------------------
# Golden flow graphs: drift in any protocol's message-flow graph must
# show up as a readable failing diff against tests/golden/.
# ---------------------------------------------------------------------------
def _real_flows():
    parsed = []
    for file_path in discover_files([REPO_SRC]):
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        parsed.append((file_path.replace(os.sep, "/"),
                       ast.parse(source)))
    return extract_flows(build_index(parsed))


class TestGoldenFlowGraphs:
    def test_every_protocol_has_a_committed_golden(self):
        flows = _real_flows()
        expected = {f"msgflow_{name}.json" for name in flows}
        committed = {p.name for p in GOLDEN_DIR.glob("msgflow_*.json")}
        assert committed == expected

    def test_flow_graphs_match_goldens(self):
        flows = _real_flows()
        drifts = []
        for name in sorted(flows):
            golden_path = GOLDEN_DIR / f"msgflow_{name}.json"
            golden = json.loads(golden_path.read_text())
            current = json.loads(json.dumps(flows[name].to_dict()))
            if current == golden:
                continue
            for msg in sorted(set(golden["messages"])
                              | set(current["messages"])):
                before = golden["messages"].get(msg)
                after = current["messages"].get(msg)
                if before != after:
                    drifts.append(
                        f"{name}/{msg}:\n"
                        f"  golden:  {json.dumps(before, sort_keys=True)}\n"
                        f"  current: {json.dumps(after, sort_keys=True)}")
            if golden.get("phases") != current.get("phases"):
                drifts.append(f"{name}/phases: {golden.get('phases')} "
                              f"-> {current.get('phases')}")
        assert not drifts, (
            "message-flow graph drifted from tests/golden/ — if the "
            "change is intentional, update specs.py and regenerate the "
            "goldens:\n" + "\n".join(drifts))

    def test_flow_report_and_dot_are_well_formed(self):
        flows = _real_flows()
        payload = flow_report(flows)
        assert payload["version"] == 1
        assert set(payload["protocols"]) == set(flows)
        dot = flow_dot(flows)
        assert dot.startswith("digraph msgflow {")
        assert "cluster_0" in dot
        assert "PrePrepare" in dot


# ---------------------------------------------------------------------------
# CLI: --flow-report / --flow-dot / --changed
# ---------------------------------------------------------------------------
class TestFlowCli:
    def test_flow_artifacts_are_written(self, tmp_path, capsys):
        report_path = tmp_path / "flow.json"
        dot_path = tmp_path / "flow.dot"
        assert cli_main(["lint", REPO_SRC,
                         "--flow-report", str(report_path),
                         "--flow-dot", str(dot_path)]) == 0
        capsys.readouterr()
        payload = json.loads(report_path.read_text())
        assert payload["version"] == 1
        assert "pbft" in payload["protocols"]
        assert dot_path.read_text().startswith("digraph msgflow {")

    def test_changed_in_fresh_repo(self, tmp_path, monkeypatch, capsys):
        repo = tmp_path / "repo"
        repo.mkdir()
        env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
               "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
               **os.environ}

        def git(*argv):
            subprocess.run(["git", *argv], cwd=repo, env=env, check=True,
                           capture_output=True)

        git("init", "-q")
        tracked = repo / "mod.py"
        tracked.write_text("def f(sim):\n    return sim.now\n")
        (repo / "stale.py").write_text(
            "import time\n\ndef now():\n    return time.time()\n")
        git("add", ".")
        git("commit", "-qm", "seed")
        tracked.write_text("import time\n\n"
                           "def now():\n    return time.time()\n")
        monkeypatch.chdir(repo)
        # Only the file changed vs HEAD is linted: the equally bad but
        # untouched stale.py stays out of the report.
        assert cli_main(["lint", "--changed", "HEAD"]) == 1
        out = capsys.readouterr().out
        assert "mod.py" in out
        assert "stale.py" not in out

    def test_changed_with_no_changes_is_clean(self, tmp_path,
                                              monkeypatch, capsys):
        repo = tmp_path / "repo"
        repo.mkdir()
        env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
               "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
               **os.environ}
        subprocess.run(["git", "init", "-q"], cwd=repo, env=env,
                       check=True)
        (repo / "mod.py").write_text("X = 1\n")
        subprocess.run(["git", "add", "."], cwd=repo, env=env, check=True)
        subprocess.run(["git", "commit", "-qm", "seed"], cwd=repo,
                       env=env, check=True, capture_output=True)
        monkeypatch.chdir(repo)
        assert cli_main(["lint", "--changed"]) == 0
        assert "0 files" in capsys.readouterr().out

    def test_changed_against_bad_ref_exits_two(self, tmp_path,
                                               monkeypatch, capsys):
        repo = tmp_path / "repo"
        repo.mkdir()
        subprocess.run(["git", "init", "-q"], cwd=repo, check=True)
        monkeypatch.chdir(repo)
        assert cli_main(["lint", "--changed", "no-such-ref"]) == 2
