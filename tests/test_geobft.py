"""End-to-end tests for GeoBFT: normal rounds, no-op filling, Byzantine
primaries, remote view changes, and sharing strategies."""

import pytest

from repro.bench.deployment import Deployment, ExperimentConfig
from repro.consensus.messages import GlobalShare
from repro.core.config import GeoBftConfig
from repro.consensus.pbft import PbftConfig
from repro.types import replica_id


def geo_config(**overrides):
    defaults = dict(
        protocol="geobft",
        num_clusters=2,
        replicas_per_cluster=4,
        batch_size=5,
        clients_per_cluster=1,
        client_outstanding=2,
        duration=3.0,
        warmup=0.5,
        record_count=500,
        seed=11,
        geobft=GeoBftConfig(
            pbft=PbftConfig(view_change_timeout=0.8, new_view_timeout=0.8),
            remote_timeout=0.8,
            recent_view_change_window=1.0,
        ),
        view_change_timeout=0.8,
        client_retry_timeout=2.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def run_deployment(deployment, until=None, start_clients=None):
    clients = deployment.clients if start_clients is None else start_clients
    for client in clients:
        deployment.sim.schedule(0.0, client.start)
    deployment.sim.run(until=until or deployment.config.duration)


class TestNormalRounds:
    def test_all_replicas_execute_identical_rounds(self):
        deployment = Deployment(geo_config())
        run_deployment(deployment)
        replicas = list(deployment.replicas.values())
        executed = {r.executed_rounds for r in replicas}
        assert min(executed) > 5  # real progress
        assert deployment.check_safety()
        # Every round appended one block per cluster, in cluster order.
        sample = replicas[0].ledger
        assert sample.block(0).cluster_id == 1
        assert sample.block(1).cluster_id == 2
        assert sample.block(0).round_id == sample.block(1).round_id == 1

    def test_clients_complete_batches(self):
        deployment = Deployment(geo_config())
        run_deployment(deployment)
        for client in deployment.clients:
            assert client.completed_batches > 3

    def test_ledger_hash_chains_verify(self):
        deployment = Deployment(geo_config())
        run_deployment(deployment)
        for replica in deployment.replicas.values():
            replica.ledger.verify()

    def test_three_clusters(self):
        deployment = Deployment(geo_config(num_clusters=3))
        run_deployment(deployment)
        assert deployment.check_safety()
        sample = next(iter(deployment.replicas.values()))
        assert sample.executed_rounds > 3
        # Blocks cycle through clusters 1, 2, 3.
        clusters = [sample.ledger.block(i).cluster_id for i in range(6)]
        assert clusters == [1, 2, 3, 1, 2, 3]

    def test_global_share_traffic_is_f_plus_one_per_cluster(self):
        deployment = Deployment(geo_config())
        run_deployment(deployment)
        counts = deployment.metrics.message_counts()
        share_counts = counts.get("GlobalShare", {"local": 0, "global": 0})
        rounds = max(r.executed_rounds
                     for r in deployment.replicas.values())
        f = 1
        # Per round: each of 2 clusters sends f+1 = 2 messages to the
        # other cluster => ~4 global share messages per round.
        expected = rounds * 2 * (f + 1)
        assert share_counts["global"] == pytest.approx(expected, rel=0.35)


class TestNoOpRounds:
    def test_idle_cluster_fills_rounds_with_noops(self):
        deployment = Deployment(geo_config(duration=2.0))
        cluster1_clients = [c for c in deployment.clients
                            if c.node_id.cluster == 1]
        # Only cluster 1 has traffic; cluster 2 must propose no-ops to
        # keep rounds complete (§2.5).
        run_deployment(deployment, start_clients=cluster1_clients)
        replicas = list(deployment.replicas.values())
        assert all(r.executed_rounds > 2 for r in replicas)
        assert deployment.check_safety()
        sample = replicas[0].ledger
        cluster2_blocks = [b for b in sample if b.cluster_id == 2]
        assert cluster2_blocks
        assert all(b.batch[0].op == "noop" for b in cluster2_blocks)
        # And cluster 1's blocks carry real client transactions.
        cluster1_blocks = [b for b in sample if b.cluster_id == 1]
        assert any(b.batch[0].op == "update" for b in cluster1_blocks)

    def test_clients_of_active_cluster_still_complete(self):
        deployment = Deployment(geo_config(duration=2.0))
        cluster1_clients = [c for c in deployment.clients
                            if c.node_id.cluster == 1]
        run_deployment(deployment, start_clients=cluster1_clients)
        assert all(c.completed_batches > 0 for c in cluster1_clients)


class TestByzantinePrimary:
    def test_silent_primary_triggers_remote_view_change(self):
        """Example 2.4 case (1): the primary of cluster 1 never sends
        global shares to cluster 2.  Cluster 2 must detect this, force a
        remote view change in cluster 1, and recover."""
        deployment = Deployment(geo_config(duration=8.0))
        byzantine = replica_id(1, 1)
        deployment.network.failures.add_send_rule(
            lambda src, dst, msg: (
                src == byzantine
                and isinstance(msg, GlobalShare)
                and dst.cluster == 2
            )
        )
        run_deployment(deployment)
        cluster1 = [r for n, r in deployment.replicas.items()
                    if n.cluster == 1]
        cluster2 = [r for n, r in deployment.replicas.items()
                    if n.cluster == 2]
        # Cluster 1 replaced its primary (local view change forced
        # remotely), and the system made progress afterwards.
        assert all(r.engine.view >= 1 for r in cluster1)
        assert all(r.executed_rounds > 0 for r in cluster2)
        assert deployment.check_safety()

    def test_crashed_cluster_primary_recovers_via_local_view_change(self):
        deployment = Deployment(geo_config(duration=8.0))
        deployment.network.failures.crash(replica_id(1, 1))
        run_deployment(deployment)
        alive = [r for n, r in deployment.replicas.items()
                 if not deployment.network.failures.is_crashed(n)]
        cluster1 = [r for r in alive if r.node_id.cluster == 1]
        assert all(r.engine.view >= 1 for r in cluster1)
        assert all(r.executed_rounds > 0 for r in alive)
        assert deployment.check_safety()

    def test_share_to_only_some_replicas_still_propagates(self):
        """The local phase of Figure 5: as long as one non-faulty
        replica receives m, everyone gets it."""
        deployment = Deployment(geo_config(duration=4.0))
        # Drop all direct shares to replica (2, 1): the other target of
        # each round's f + 1 receivers forwards locally, so everyone
        # still learns every share.
        failures = deployment.network.failures
        failures.add_receive_rule(
            lambda src, dst, msg: (
                isinstance(msg, GlobalShare)
                and src.cluster == 1
                and dst == replica_id(2, 1)
                and msg.forwarded is False
            )
        )
        run_deployment(deployment)
        cluster2 = [r for n, r in deployment.replicas.items()
                    if n.cluster == 2]
        assert all(r.executed_rounds > 0 for r in cluster2)
        assert deployment.check_safety()


class TestSharingStrategies:
    @pytest.mark.parametrize("strategy,factor", [
        ("optimistic_f1", 2),  # f + 1 = 2 messages per cluster pair
        ("single", 1),
        ("all", 4),            # n = 4 messages per cluster pair
    ])
    def test_strategy_message_volume(self, strategy, factor):
        config = geo_config(duration=2.0)
        config.geobft = GeoBftConfig(
            pbft=config.geobft.pbft,
            remote_timeout=10.0,  # avoid remote VCs during short run
            sharing_strategy=strategy,
        )
        deployment = Deployment(config)
        run_deployment(deployment)
        counts = deployment.metrics.message_counts()
        shares = counts.get("GlobalShare", {"global": 0})["global"]
        rounds = max(r.executed_rounds for r in deployment.replicas.values())
        assert rounds > 0
        expected = rounds * 2 * factor
        assert shares == pytest.approx(expected, rel=0.4)

    def test_all_strategies_safe(self):
        for strategy in ("optimistic_f1", "single", "all"):
            config = geo_config(duration=2.0)
            config.geobft = GeoBftConfig(
                pbft=config.geobft.pbft,
                remote_timeout=10.0,
                sharing_strategy=strategy,
            )
            deployment = Deployment(config)
            run_deployment(deployment)
            assert deployment.check_safety()


class TestShareValidation:
    def test_tampered_certificate_rejected(self):
        """A forged global share (certificate for a different batch)
        must be discarded by receivers."""
        deployment = Deployment(geo_config(duration=1.0))
        run_deployment(deployment, until=1.0)
        receiver = deployment.replicas[replica_id(2, 1)]
        sender = deployment.replicas[replica_id(1, 1)]
        # Take a real decided certificate from cluster 1 and tamper it.
        decision = sender.engine.decision(sender.engine.decided_count)
        assert decision is not None
        _request, certificate = decision
        from repro.consensus.messages import (
            ClientRequestBatch, CommitCertificate,
        )
        from repro.ledger.block import Transaction
        evil_request = ClientRequestBatch(
            "evil", certificate.request.client,
            (Transaction("evil", "update", 1, "hacked"),),
            certificate.request.signature,
        )
        forged_cert = CommitCertificate(
            certificate.cluster_id, 999, certificate.view, evil_request,
            certificate.commits,
        )
        before = receiver.ordering.has_share(999, 1)
        receiver._on_global_share(
            GlobalShare(999, 1, forged_cert, forwarded=False), sender.node_id
        )
        assert before is False
        assert receiver.ordering.has_share(999, 1) is False


class TestResendWithoutViewChange:
    def test_current_primary_answers_late_rvc_by_resending(self):
        """Regression: if the remote cluster's RVC arrives *after* the
        faulty primary was already replaced (the 'recent local view
        change' suppression path), the current healthy primary must
        re-share the missing rounds itself — otherwise the requesting
        cluster stalls forever on the rounds whose shares died with the
        old primary."""
        deployment = Deployment(geo_config(
            duration=10.0, client_retry_timeout=1.5))
        # Crash Oregon's primary mid-run; its in-flight shares are lost.
        deployment.sim.schedule(
            1.0, deployment.network.failures.crash, replica_id(1, 1))
        result = deployment.run()
        assert result.safety_ok
        iowa = [r for n, r in deployment.replicas.items() if n.cluster == 2]
        oregon_alive = [r for n, r in deployment.replicas.items()
                        if n.cluster == 1 and n.index != 1]
        # Iowa caught up with Oregon's decisions despite the crash: its
        # executed rounds track Oregon's decided rounds, not just the
        # pre-crash prefix.
        oregon_decided = max(r.engine.decided_count for r in oregon_alive)
        iowa_rounds = max(r.executed_rounds for r in iowa)
        assert oregon_decided > 20
        assert iowa_rounds > 0.5 * oregon_decided
