"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.bench.deployment import Deployment, ExperimentConfig
from repro.crypto.costs import CryptoCostModel
from repro.crypto.signatures import KeyRegistry
from repro.net.network import Network
from repro.net.simulator import Simulation
from repro.net.topology import Topology


@pytest.fixture
def sim() -> Simulation:
    """A fresh simulator with a fixed seed."""
    return Simulation(seed=42)


@pytest.fixture
def registry() -> KeyRegistry:
    """A fresh PKI."""
    return KeyRegistry(seed=b"test-pki")


@pytest.fixture
def uniform_topology() -> Topology:
    """Six fast, flat regions (no geography) for logic-only tests."""
    return Topology.uniform(
        [f"region{i}" for i in range(1, 7)], rtt_ms=2.0,
        bandwidth_mbit=8000.0,
    )


@pytest.fixture
def network(sim, uniform_topology) -> Network:
    """A network over the uniform topology."""
    return Network(sim, uniform_topology)


def small_config(protocol: str = "geobft", **overrides) -> ExperimentConfig:
    """A small, fast experiment config for integration tests.

    Uses the paper topology (2 regions), 4 replicas per cluster, tiny
    batches, and real crypto unless overridden.
    """
    defaults = dict(
        protocol=protocol,
        num_clusters=2,
        replicas_per_cluster=4,
        batch_size=5,
        clients_per_cluster=1,
        client_outstanding=2,
        duration=3.0,
        warmup=0.5,
        record_count=500,
        seed=3,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def run_small(protocol: str = "geobft", **overrides):
    """Build, run, and return (deployment, result) for a small config."""
    deployment = Deployment(small_config(protocol, **overrides))
    result = deployment.run()
    return deployment, result


@pytest.fixture
def free_costs() -> CryptoCostModel:
    """Zero-cost crypto for logic-only unit tests."""
    return CryptoCostModel.free()
