"""Adversarial tests: equivocation, replay, impersonation, partitions.

These exercise the safety arguments of §2: non-divergence must survive
actively malicious primaries and forwarders, and liveness must return
once communication becomes reliable again (the paper's asynchronous
model caveat)."""

import pytest

from repro.bench.deployment import Deployment, ExperimentConfig
from repro.consensus.messages import GlobalShare, PrePrepare
from repro.consensus.pbft import PbftConfig
from repro.core.config import GeoBftConfig
from repro.ledger.block import Transaction
from repro.types import replica_id

from .conftest import small_config


class TestEquivocatingPrimary:
    def test_equivocation_never_diverges_replicas(self):
        """A Byzantine primary proposes different batches for the same
        sequence number to different backups.  Quorum intersection
        guarantees at most one can commit — never both."""
        from .test_pbft import PbftHarness

        h = PbftHarness(n=4)
        request_a = h.make_request()
        request_b = h.make_request()
        primary = h.primary.node_id
        pp_a = PrePrepare(0, 0, 1, request_a.digest(), request_a)
        pp_b = PrePrepare(0, 0, 1, request_b.digest(), request_b)
        # The primary equivocates: A to backup 1, B to backups 2 and 3.
        h.network.send(primary, h.replicas[1].node_id, pp_a)
        h.network.send(primary, h.replicas[2].node_id, pp_b)
        h.network.send(primary, h.replicas[3].node_id, pp_b)
        h.run(until=5.0)
        decided_digests = set()
        for replica in h.replicas[1:]:
            if replica.ledger.height > 0:
                decided_digests.add(replica.ledger.block(0).batch_digest)
        assert len(decided_digests) <= 1

    def test_equivocation_cannot_commit_both_sides(self):
        from .test_pbft import PbftHarness

        h = PbftHarness(n=4)
        request_a = h.make_request()
        request_b = h.make_request()
        primary = h.primary.node_id
        # 2-2 split: neither side can reach a 3-replica prepare quorum
        # that excludes the other (primary's pre-prepare counts once
        # per side it claims, but commits need n - f matching).
        h.network.send(primary, h.replicas[1].node_id,
                       PrePrepare(0, 0, 1, request_a.digest(), request_a))
        h.network.send(primary, h.replicas[2].node_id,
                       PrePrepare(0, 0, 1, request_b.digest(), request_b))
        h.run(until=1.0)
        committed = [r for r in h.replicas[1:] if r.ledger.height > 0]
        # With a 1-1 split plus silent third backup, nothing commits.
        digests = {r.ledger.block(0).batch_digest for r in committed}
        assert len(digests) <= 1


class TestReplayAttacks:
    def test_replayed_global_share_for_executed_round_ignored(self):
        deployment = Deployment(small_config("geobft", duration=2.0))
        shares = []
        deployment.network.add_observer(
            lambda s, d, m, size, local:
            shares.append(m) if isinstance(m, GlobalShare)
            and not local else None)
        deployment.run()
        assert shares
        replay = shares[0]
        victim = deployment.replicas[replica_id(2, 2)]
        rounds_before = victim.executed_rounds
        ledger_before = victim.ledger.height
        victim._on_global_share(replay, replica_id(1, 1))
        assert victim.executed_rounds == rounds_before
        assert victim.ledger.height == ledger_before

    def test_duplicate_client_request_executed_once(self):
        deployment = Deployment(small_config("geobft", duration=2.0))
        deployment.run()
        replica = deployment.replicas[replica_id(1, 1)]
        txn_ids = [txn.txn_id for block in replica.ledger
                   for txn in block.batch]
        assert len(txn_ids) == len(set(txn_ids))


class TestImpersonation:
    def test_forged_share_with_stolen_commits_rejected(self):
        """A Byzantine forwarder rebuilds a certificate around its own
        evil request; the commit signatures no longer match."""
        from repro.consensus.messages import (
            ClientRequestBatch,
            CommitCertificate,
        )

        deployment = Deployment(small_config("geobft", duration=1.5))
        deployment.run()
        sender = deployment.replicas[replica_id(1, 1)]
        receiver = deployment.replicas[replica_id(2, 1)]
        round_id = max(sender._own_decisions)
        request, certificate = sender._own_decisions[round_id]
        evil = ClientRequestBatch(
            "evil", request.client,
            (Transaction("evil", "update", 0, "corrupted"),),
            request.signature,
        )
        forged = CommitCertificate(1, 7777, certificate.view, evil,
                                   certificate.commits)
        receiver._on_global_share(GlobalShare(7777, 1, forged, forwarded=False),
                                  sender.node_id)
        assert not receiver.ordering.has_share(7777, 1)


class TestPartitions:
    def test_isolated_cluster_stalls_then_recovers_on_heal(self):
        """Sever all links into cluster 2, let GeoBFT stall, heal, and
        verify rounds resume — liveness returns with reliable
        communication (Theorem 2.8's precondition)."""
        config = small_config(
            "geobft", duration=12.0, fast_crypto=True,
            client_retry_timeout=2.0,
            geobft=GeoBftConfig(
                pbft=PbftConfig(view_change_timeout=1.5,
                                new_view_timeout=1.5),
                remote_timeout=1.5,
            ),
        )
        deployment = Deployment(config)
        cluster1 = deployment.cluster_members[1]
        cluster2 = deployment.cluster_members[2]
        failures = deployment.network.failures
        for a in cluster1:
            for b in cluster2:
                failures.sever_bidirectional(a, b)
        # Heal at t = 4 s.
        deployment.sim.schedule(4.0, lambda: [
            failures.heal(a, b) or failures.heal(b, a)
            for a in cluster1 for b in cluster2
        ])
        result = deployment.run()
        assert result.safety_ok
        rounds = [r.executed_rounds for r in deployment.replicas.values()]
        assert min(rounds) > 0  # recovered after heal


class TestForgedProtocolArtifacts:
    def test_hotstuff_forged_qc_rejected(self):
        """A QC whose signatures do not verify never advances a phase."""
        from repro.consensus.messages import HsProposal, HsQuorumCert
        from repro.crypto.signatures import Signature

        deployment = Deployment(small_config("hotstuff", duration=1.0,
                                             warmup=0.2))
        deployment.run()
        victim = deployment.replicas[replica_id(2, 2)]
        leader = deployment.replicas[replica_id(1, 1)]
        fake_sigs = tuple(
            Signature(replica_id(1, i), b"\x00" * 32) for i in range(1, 7)
        )
        qc = HsQuorumCert("prepare", 0, 9999, b"d" * 32, fake_sigs)
        proposal = HsProposal("precommit", 0, 9999, b"d" * 32, None, qc)
        before = len(victim._states)
        victim._process_proposal(proposal, leader.node_id)
        state = victim._states.get((0, 9999))
        # The forged QC must not have produced a vote.
        assert state is None or "precommit" not in state.voted

    def test_steward_forged_forward_rejected(self):
        """A site forward whose certificate does not verify is dropped
        by the primary cluster."""
        from repro.consensus.messages import (
            ClientRequestBatch,
            Commit,
            CommitCertificate,
            StewardForward,
        )

        deployment = Deployment(small_config(
            "steward", duration=1.0, warmup=0.2, steward_crypto_factor=1.0))
        deployment.run()
        leader = deployment.replicas[replica_id(1, 1)]
        evil_batch = (Transaction("forged", "update", 0, "x"),)
        request = ClientRequestBatch("forged-batch", replica_id(2, 1),
                                     evil_batch, None)
        fake_commits = tuple(
            Commit(2, 0, 1, request.digest(), replica_id(2, i), None)
            for i in range(1, 4)
        )
        cert = CommitCertificate(2, 1, 0, request, fake_commits)
        forward = StewardForward(2, 1, request, cert)
        before = leader.engine.queued_requests + leader.engine.in_flight
        leader._on_forward(forward, replica_id(2, 1))
        assert "forged-batch" not in leader._submitted_to_global
