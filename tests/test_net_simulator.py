"""Tests for the discrete-event simulator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.net.simulator import Simulation


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulation().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulation()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_equal_times_fire_in_scheduling_order(self):
        sim = Simulation()
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_now_advances_to_event_time(self):
        sim = Simulation()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_nested_scheduling(self):
        sim = Simulation()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, fired.append, "inner")

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulation().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulation()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_zero_delay_runs_after_current_instant_fifo(self):
        sim = Simulation()
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.schedule(0.0, fired.append, 2)
        sim.run()
        assert fired == [1, 2]


class TestRunControl:
    def test_run_until_stops_clock(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_run_until_resumable(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run(until=10.0)
        assert fired == ["a", "b"]

    def test_max_events_bounds_work(self):
        sim = Simulation()

        def loop():
            sim.schedule(0.001, loop)

        sim.schedule(0.0, loop)
        sim.run(max_events=100)
        assert sim.events_processed >= 100

    def test_step_fires_one_event(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step()
        assert fired == ["a"]

    def test_step_on_idle_returns_false(self):
        assert not Simulation().step()

    def test_run_until_advances_time_even_when_idle(self):
        sim = Simulation()
        sim.run(until=7.0)
        assert sim.now == 7.0


class TestTimers:
    def test_cancelled_timer_does_not_fire(self):
        sim = Simulation()
        fired = []
        timer = sim.schedule(1.0, fired.append, "x")
        timer.cancel()
        sim.run()
        assert fired == []
        assert timer.cancelled
        assert not timer.fired

    def test_timer_fired_flag(self):
        sim = Simulation()
        timer = sim.schedule(1.0, lambda: None)
        sim.run()
        assert timer.fired

    def test_cancel_after_fire_is_noop(self):
        sim = Simulation()
        timer = sim.schedule(1.0, lambda: None)
        sim.run()
        timer.cancel()
        assert timer.fired

    def test_step_skips_cancelled_events(self):
        sim = Simulation()
        fired = []
        timer = sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        timer.cancel()
        assert sim.step()
        assert fired == ["b"]


class TestDeterminism:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), max_size=30))
    def test_identical_schedules_identical_orders(self, delays):
        def trace(delays):
            sim = Simulation(seed=5)
            fired = []
            for i, d in enumerate(delays):
                sim.schedule(d, fired.append, i)
            sim.run()
            return fired

        assert trace(delays) == trace(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=30))
    def test_fire_order_respects_timestamps(self, delays):
        sim = Simulation()
        fired = []
        for i, d in enumerate(delays):
            sim.schedule(d, lambda d=d: fired.append(d))
        sim.run()
        assert fired == sorted(fired)

    def test_rng_is_seeded(self):
        assert Simulation(seed=7).rng.random() == Simulation(seed=7).rng.random()


class TestQueueDepthTelemetry:
    def test_max_queue_depth_high_water_mark(self):
        sim = Simulation()
        assert sim.max_queue_depth == 0
        for i in range(5):
            sim.post(1.0 + i, lambda: None)
        sim.schedule(6.0, lambda: None)
        sim.post(0.0, lambda: None)
        assert sim.max_queue_depth == 7
        sim.run()
        # Draining does not lower the high-water mark…
        assert sim.pending_events == 0
        assert sim.max_queue_depth == 7
        # …and later pushes only raise it past the old peak.
        sim.post(1.0, lambda: None)
        assert sim.max_queue_depth == 7

    def test_max_queue_depth_tracks_nested_posts(self):
        sim = Simulation()

        def fan_out():
            for _ in range(9):
                sim.post(0.5, lambda: None)

        sim.post(1.0, fan_out)
        assert sim.max_queue_depth == 1
        sim.run()
        # One event in flight plus nine children queued at once — the
        # consumed parent no longer counts toward the depth.
        assert sim.max_queue_depth == 9

    def test_step_decrements_depth(self):
        sim = Simulation()
        sim.post(1.0, lambda: None)
        sim.post(2.0, lambda: None)
        assert sim.max_queue_depth == 2
        sim.step()
        sim.post(3.0, lambda: None)
        # 2 pending again, never 3 at once.
        assert sim.max_queue_depth == 2


class TestGroupedEvents:
    def test_post_group_credits_skipped_events(self):
        """A grouped event plus count_extra_events reproduces the
        events_processed count of the ungrouped schedule exactly."""
        plain = Simulation()
        for _ in range(4):
            plain.post(1.0, lambda: None)
        plain.run()

        grouped = Simulation()
        grouped.post_group(1.0, 4, grouped.count_extra_events, 3)
        grouped.run()

        assert plain.events_processed == grouped.events_processed == 4

    def test_post_group_reserves_sequence_numbers(self):
        """Events posted after a group sort after all of its members."""
        order = []
        sim = Simulation()
        sim.post_group(1.0, 3, order.append, "group")
        sim.post(1.0, order.append, "after")
        sim.run()
        assert order == ["group", "after"]
        # The group consumed 3 sequence numbers + 1 for "after".
        assert sim._seq == 4

    def test_post_group_rejects_empty_group(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.post_group(1.0, 0, lambda: None)


class TestLaneCalendarInterleaving:
    def test_calendar_tie_beats_younger_lane_entry(self):
        """At equal deadlines, a calendar event scheduled *earlier*
        (smaller seq) fires before a zero-delay event posted later."""
        order = []
        sim = Simulation()

        def at_one():
            order.append("first")
            # Lane entry minted at t=1.0 (large seq)…
            sim.post(0.0, order.append, "lane")

        sim.post(1.0, at_one)
        # …while this calendar entry (seq 1) also lands at t=1.0.
        sim.post(1.0, order.append, "calendar")
        sim.run()
        assert order == ["first", "calendar", "lane"]

    def test_lane_drains_before_time_advances(self):
        times = []
        sim = Simulation()

        def chain(depth):
            times.append((sim.now, depth))
            if depth:
                sim.post(0.0, chain, depth - 1)

        sim.post(1.0, chain, 3)
        sim.post(2.0, times.append, "late")
        sim.run()
        assert times == [(1.0, 3), (1.0, 2), (1.0, 1), (1.0, 0), "late"]

    def test_run_until_holds_lane_and_calendar(self):
        fired = []
        sim = Simulation()
        sim.post(2.0, fired.append, "cal")
        sim.run(until=1.0)

        def post_zero():
            sim.post(0.0, fired.append, "lane")

        sim.schedule_at(1.5, post_zero)
        sim.run(until=1.2)
        assert fired == [] and sim.now == 1.2
        sim.run()
        assert fired == ["lane", "cal"]

    def test_cancelled_zero_delay_timer_is_a_lane_noop(self):
        fired = []
        sim = Simulation()
        timer = sim.schedule(0.0, fired.append, "x")
        sim.schedule(0.0, fired.append, "y")
        timer.cancel()
        sim.run()
        assert fired == ["y"]
        assert timer.cancelled and not timer.fired
        # Cancelling again after the queue drained stays a no-op.
        timer.cancel()
        assert not timer.fired
