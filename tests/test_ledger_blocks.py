"""Tests for blocks and the blockchain."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LedgerError, TamperedLedgerError
from repro.ledger.block import (
    GENESIS_HASH,
    Block,
    Transaction,
    batch_digest,
    make_block,
)
from repro.ledger.blockchain import Blockchain


def batch(*ids):
    return tuple(Transaction(i, "update", 1, "v") for i in ids)


class TestTransactions:
    def test_noop(self):
        txn = Transaction.noop("n1")
        assert txn.op == "noop"
        assert txn.payload()[0] == "txn"

    def test_batch_digest_depends_on_content(self):
        assert batch_digest(batch("a", "b")) != batch_digest(batch("b", "a"))
        assert batch_digest(batch("a")) == batch_digest(batch("a"))


class TestBlocks:
    def test_make_block_links_genesis(self):
        block = make_block(0, 1, 1, batch("a"), ("cert",), None)
        assert block.prev_hash == GENESIS_HASH

    def test_block_hash_covers_batch(self):
        b1 = make_block(0, 1, 1, batch("a"), ("cert",), None)
        b2 = make_block(0, 1, 1, batch("b"), ("cert",), None)
        assert b1.block_hash() != b2.block_hash()

    def test_block_hash_ignores_certificate_representation(self):
        """Different (equally valid) certificates must not diverge the
        hash chain across replicas (Lemma 2.3 discussion in block.py)."""
        b1 = make_block(0, 1, 1, batch("a"), ("cert-variant-1",), None)
        b2 = make_block(0, 1, 1, batch("a"), ("cert-variant-2",), None)
        assert b1.block_hash() == b2.block_hash()
        assert b1.certificate_digest != b2.certificate_digest


class TestBlockchain:
    def test_append_and_height(self):
        chain = Blockchain()
        assert chain.height == 0
        chain.append(1, 1, batch("a"), ("cert",))
        chain.append(1, 2, batch("b"), ("cert",))
        assert chain.height == 2
        assert len(chain) == 2

    def test_blocks_link(self):
        chain = Blockchain()
        b1 = chain.append(1, 1, batch("a"), ("cert",))
        b2 = chain.append(1, 2, batch("b"), ("cert",))
        assert b2.prev_hash == b1.block_hash()
        assert chain.head_hash == b2.block_hash()

    def test_verify_accepts_untouched_chain(self):
        chain = Blockchain()
        for i in range(10):
            chain.append(i, 1, batch(f"t{i}"), ("cert", i))
        chain.verify()

    def test_verify_detects_content_tampering(self):
        chain = Blockchain()
        chain.append(1, 1, batch("a"), ("cert",))
        chain.append(1, 2, batch("b"), ("cert",))
        original = chain.block(0)
        tampered = Block(
            original.height, original.round_id, original.cluster_id,
            batch("evil"), original.batch_digest,
            original.certificate_digest, original.prev_hash,
        )
        chain.tamper_for_test(0, tampered)
        with pytest.raises(TamperedLedgerError):
            chain.verify()

    def test_shallow_verify_checks_chain_structure_only(self):
        """deep=False validates links/hashes but not batch content —
        it is the cheap audit used during benchmark runs."""
        chain = Blockchain()
        chain.append(1, 1, batch("a"), ("cert",))
        original = chain.block(0)
        tampered = Block(
            original.height, original.round_id, original.cluster_id,
            batch("evil"), original.batch_digest,
            original.certificate_digest, original.prev_hash,
        )
        chain.tamper_for_test(0, tampered)
        chain.verify(deep=False)  # structure intact
        with pytest.raises(TamperedLedgerError):
            chain.verify(deep=True)

    def test_verify_detects_digest_tampering(self):
        """Changing the stored batch digest breaks the block hash."""
        chain = Blockchain()
        chain.append(1, 1, batch("a"), ("cert",))
        original = chain.block(0)
        tampered = Block(
            original.height, original.round_id, original.cluster_id,
            original.batch, b"\x00" * 32,
            original.certificate_digest, original.prev_hash,
        )
        chain.tamper_for_test(0, tampered)
        with pytest.raises(TamperedLedgerError):
            chain.verify(deep=False)

    def test_verify_detects_reordering(self):
        chain = Blockchain()
        chain.append(1, 1, batch("a"), ("cert",))
        chain.append(1, 2, batch("b"), ("cert",))
        b0, b1 = chain.block(0), chain.block(1)
        chain.tamper_for_test(0, b1)
        chain.tamper_for_test(1, b0)
        with pytest.raises(TamperedLedgerError):
            chain.verify()

    def test_certificate_retained(self):
        chain = Blockchain()
        chain.append(1, 1, batch("a"), ("cert", 42))
        assert chain.certificate(0) == ("cert", 42)

    def test_out_of_range_access(self):
        chain = Blockchain()
        with pytest.raises(LedgerError):
            chain.block(0)
        with pytest.raises(LedgerError):
            chain.certificate(3)

    def test_prefix_comparison(self):
        long_chain = Blockchain()
        short_chain = Blockchain()
        for i in range(5):
            long_chain.append(i, 1, batch(f"t{i}"), ("c",))
            if i < 3:
                short_chain.append(i, 1, batch(f"t{i}"), ("c",))
        assert short_chain.matches_prefix_of(long_chain)
        assert not long_chain.matches_prefix_of(short_chain)

    def test_diverged_chains_not_prefix(self):
        a = Blockchain()
        b = Blockchain()
        a.append(1, 1, batch("x"), ("c",))
        b.append(1, 1, batch("y"), ("c",))
        assert not a.matches_prefix_of(b)

    def test_empty_chain_is_prefix_of_anything(self):
        a = Blockchain()
        b = Blockchain()
        b.append(1, 1, batch("x"), ("c",))
        assert a.matches_prefix_of(b)
        assert a.last_block() is None
        assert b.last_block() is not None

    @given(st.lists(st.text(min_size=1, max_size=6), min_size=1,
                    max_size=20, unique=True))
    def test_same_appends_same_head(self, ids):
        def build():
            chain = Blockchain()
            for i, txn_id in enumerate(ids):
                chain.append(i, 1, batch(txn_id), ("c", i))
            return chain

        assert build().head_hash == build().head_hash
        build().verify()
