"""Tests for ``repro lint``: every rule fires on a bad fixture and stays
quiet on the matching good one, suppressions and the allowlist waive
findings (with an audit trail), the ``--json`` schema is stable, and the
repository's own tree lints clean."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.lint import AllowlistEntry, default_rules, rule_ids, run_lint
from repro.lint.engine import lint_source

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src" / "repro")


def findings_for(source: str, rule: str, path: str = "module.py",
                 **kwargs):
    report = lint_source(textwrap.dedent(source), path=path,
                        rules=default_rules([rule]), **kwargs)
    return [f for f in report.findings if f.rule == rule]


# ---------------------------------------------------------------------------
# Rule: no-wallclock
# ---------------------------------------------------------------------------
class TestNoWallclock:
    def test_fires_on_time_time(self):
        bad = """
            import time

            def now():
                return time.time()
        """
        found = findings_for(bad, "no-wallclock")
        assert len(found) == 1
        assert found[0].symbol == "now"
        assert "time.time" in found[0].message

    def test_sees_through_module_alias(self):
        bad = """
            import time as t

            def now():
                return t.monotonic()
        """
        assert findings_for(bad, "no-wallclock")

    def test_sees_through_from_import(self):
        bad = """
            from time import perf_counter as pc

            def now():
                return pc()
        """
        assert findings_for(bad, "no-wallclock")

    def test_fires_on_datetime_now(self):
        bad = """
            import datetime

            def stamp():
                return datetime.datetime.now()
        """
        assert findings_for(bad, "no-wallclock")

    def test_quiet_on_virtual_time(self):
        good = """
            def now(sim):
                return sim.now
        """
        assert not findings_for(good, "no-wallclock")

    def test_quiet_on_time_constants(self):
        good = """
            import time

            def zone():
                return time.timezone
        """
        assert not findings_for(good, "no-wallclock")


# ---------------------------------------------------------------------------
# Rule: no-unseeded-random
# ---------------------------------------------------------------------------
class TestNoUnseededRandom:
    def test_fires_on_module_level_random(self):
        bad = """
            import random

            def jitter():
                return random.random()
        """
        found = findings_for(bad, "no-unseeded-random")
        assert len(found) == 1
        assert "unseeded" in found[0].message

    def test_fires_on_unseeded_random_constructor(self):
        bad = """
            import random

            def make_rng():
                return random.Random()
        """
        assert findings_for(bad, "no-unseeded-random")

    def test_fires_on_from_import_of_module_function(self):
        bad = """
            from random import choice

            def pick(xs):
                return choice(xs)
        """
        assert findings_for(bad, "no-unseeded-random")

    def test_fires_on_secrets_and_uuid4_and_urandom(self):
        bad = """
            import os
            import secrets
            import uuid

            def ids():
                return secrets.token_bytes(8), uuid.uuid4(), os.urandom(4)
        """
        assert len(findings_for(bad, "no-unseeded-random")) == 3

    def test_quiet_on_seeded_generator(self):
        good = """
            import random

            def make_rng(seed):
                return random.Random(seed)

            def jitter(rng):
                return rng.random()
        """
        assert not findings_for(good, "no-unseeded-random")


# ---------------------------------------------------------------------------
# Rule: deterministic-iteration
# ---------------------------------------------------------------------------
class TestDeterministicIteration:
    def test_fires_on_set_iteration_into_send(self):
        bad = """
            def fan_out(net, src, peers, message):
                for peer in set(peers):
                    net.send(src, peer, message)
        """
        found = findings_for(bad, "deterministic-iteration")
        assert len(found) == 1
        assert "sorted()" in found[0].message

    def test_fires_on_set_literal_and_set_variable(self):
        bad = """
            def fan_out(net, src, message):
                peers = {1, 2, 3}
                for peer in peers:
                    net.post(0.0, src, peer, message)
        """
        assert findings_for(bad, "deterministic-iteration")

    def test_fires_on_set_passed_to_multicast(self):
        bad = """
            def fan_out(net, src, peers, message):
                net.multicast(src, set(peers), message)
        """
        assert findings_for(bad, "deterministic-iteration")

    def test_quiet_on_sorted_set(self):
        good = """
            def fan_out(net, src, peers, message):
                for peer in sorted(set(peers)):
                    net.send(src, peer, message)
        """
        assert not findings_for(good, "deterministic-iteration")

    def test_quiet_on_set_iteration_without_event_sink(self):
        # Aggregation over a set (no ordering consequence) is fine.
        good = """
            def total(sizes):
                acc = 0
                for size in set(sizes):
                    acc += size
                return acc
        """
        assert not findings_for(good, "deterministic-iteration")

    def test_quiet_on_list_iteration_into_send(self):
        good = """
            def fan_out(net, src, peers, message):
                for peer in peers:
                    net.send(src, peer, message)
        """
        assert not findings_for(good, "deterministic-iteration")


# ---------------------------------------------------------------------------
# Rule: no-identity-ordering
# ---------------------------------------------------------------------------
class TestNoIdentityOrdering:
    def test_fires_on_id_sort_key(self):
        bad = """
            def order(messages):
                return sorted(messages, key=id)
        """
        found = findings_for(bad, "no-identity-ordering")
        assert len(found) == 1
        assert "id()" in found[0].message

    def test_fires_on_hash_inside_sort_key_lambda(self):
        bad = """
            def order(messages):
                messages.sort(key=lambda m: hash(m))
        """
        assert findings_for(bad, "no-identity-ordering")

    def test_fires_on_id_comparison(self):
        bad = """
            def tie_break(a, b):
                return a if id(a) < id(b) else b
        """
        assert findings_for(bad, "no-identity-ordering")

    def test_quiet_on_stable_sort_key(self):
        good = """
            def order(messages):
                return sorted(messages, key=lambda m: (m.seq, str(m.replica)))
        """
        assert not findings_for(good, "no-identity-ordering")

    def test_quiet_on_id_as_memo_key(self):
        # Identity used for caching (never ordered) is the documented
        # legitimate use.
        good = """
            def memoize(cache, batch, value):
                cache[id(batch)] = value
        """
        assert not findings_for(good, "no-identity-ordering")


# ---------------------------------------------------------------------------
# Rule: slots-coverage (path-scoped to hot-path modules)
# ---------------------------------------------------------------------------
class TestSlotsCoverage:
    HOT_PATH = "repro/consensus/messages.py"

    def test_fires_on_slotless_class_in_hot_module(self):
        bad = """
            class Prepare:
                def __init__(self, seq):
                    self.seq = seq
        """
        found = findings_for(bad, "slots-coverage", path=self.HOT_PATH)
        assert len(found) == 1
        assert "Prepare" in found[0].message

    def test_quiet_on_slotted_class(self):
        good = """
            class Prepare:
                __slots__ = ("seq",)

                def __init__(self, seq):
                    self.seq = seq
        """
        assert not findings_for(good, "slots-coverage", path=self.HOT_PATH)

    def test_quiet_outside_hot_modules(self):
        bad = """
            class Anything:
                pass
        """
        assert not findings_for(bad, "slots-coverage", path="repro/cli.py")

    def test_exempts_protocol_and_exception_classes(self):
        good = """
            from typing import Protocol

            class NodeLike(Protocol):
                def deliver(self, message, sender): ...

            class BadThing(Exception):
                pass
        """
        assert not findings_for(good, "slots-coverage", path=self.HOT_PATH)


# ---------------------------------------------------------------------------
# Rule: verify-before-mutate (path-scoped to protocol modules)
# ---------------------------------------------------------------------------
class TestVerifyBeforeMutate:
    PROTOCOL = "repro/consensus/pbft.py"

    def test_fires_when_mutation_precedes_verify(self):
        bad = """
            class Engine:
                def _on_commit(self, msg, sender):
                    self._commits[msg.seq] = msg
                    if not self._verify_commit(msg):
                        return
        """
        found = findings_for(bad, "verify-before-mutate", path=self.PROTOCOL)
        assert len(found) == 1
        assert "_on_commit" in found[0].message
        assert found[0].symbol == "Engine._on_commit"

    def test_quiet_when_verify_comes_first(self):
        good = """
            class Engine:
                def _on_commit(self, msg, sender):
                    if not self._verify_commit(msg):
                        return
                    self._commits[msg.seq] = msg
        """
        assert not findings_for(good, "verify-before-mutate",
                                path=self.PROTOCOL)

    def test_exempts_handlers_without_verification(self):
        # MAC-authenticated handlers have no verify call; transport
        # covers them, so mutation placement is unconstrained.
        good = """
            class Engine:
                def _on_prepare(self, msg, sender):
                    self._prepares[msg.seq] = msg
        """
        assert not findings_for(good, "verify-before-mutate",
                                path=self.PROTOCOL)

    def test_quiet_outside_protocol_modules(self):
        bad = """
            class Engine:
                def _on_commit(self, msg, sender):
                    self._commits[msg.seq] = msg
                    self._verify_commit(msg)
        """
        assert not findings_for(bad, "verify-before-mutate",
                                path="repro/bench/metrics.py")


# ---------------------------------------------------------------------------
# Rule: no-silent-except
# ---------------------------------------------------------------------------
class TestNoSilentExcept:
    def test_fires_on_swallowed_broad_except(self):
        bad = """
            def load(fn):
                try:
                    return fn()
                except Exception:
                    pass
        """
        found = findings_for(bad, "no-silent-except")
        assert len(found) == 1

    def test_fires_on_bare_except(self):
        bad = """
            def load(fn):
                try:
                    return fn()
                except:
                    return None
        """
        assert findings_for(bad, "no-silent-except")

    def test_quiet_on_narrow_except(self):
        good = """
            def load(fn):
                try:
                    return fn()
                except ValueError:
                    return None
        """
        assert not findings_for(good, "no-silent-except")

    def test_quiet_when_reraised(self):
        good = """
            def load(fn):
                try:
                    return fn()
                except Exception as exc:
                    raise RuntimeError("load failed") from exc
        """
        assert not findings_for(good, "no-silent-except")


# ---------------------------------------------------------------------------
# Rule: no-cross-worker-shared-state
# ---------------------------------------------------------------------------
class TestNoCrossWorkerSharedState:
    PATH = "repro/consensus/fancy.py"
    RULE = "no-cross-worker-shared-state"

    def test_fires_on_mutated_module_dict(self):
        bad = """
            _SEEN = {}

            def handle(msg):
                _SEEN[msg.key] = msg
        """
        found = findings_for(bad, self.RULE, path=self.PATH)
        assert len(found) == 1
        assert "_SEEN" in found[0].message
        assert "worker" in found[0].message

    def test_fires_on_mutator_method_call(self):
        bad = """
            _PENDING = []

            def handle(msg):
                _PENDING.append(msg)
        """
        assert findings_for(bad, self.RULE, path=self.PATH)

    def test_fires_on_global_rebinding(self):
        bad = """
            _ROUND = 0

            def handle(msg):
                global _ROUND
                _ROUND += 1
        """
        found = findings_for(bad, self.RULE, path=self.PATH)
        assert found and "global" in found[0].message

    def test_fires_on_delete_of_module_state(self):
        bad = """
            _CACHE = {}

            def evict(key):
                del _CACHE[key]
        """
        assert findings_for(bad, self.RULE, path=self.PATH)

    def test_quiet_on_readonly_lookup_table(self):
        good = """
            _NEXT_PHASE = {"prepare": "precommit"}

            def advance(phase):
                return _NEXT_PHASE[phase]
        """
        assert not findings_for(good, self.RULE, path=self.PATH)

    def test_quiet_on_immutable_constants(self):
        good = """
            KINDS = ("crash", "partition")
            NAMES = frozenset({"a", "b"})

            def check(kind):
                return kind in KINDS
        """
        assert not findings_for(good, self.RULE, path=self.PATH)

    def test_quiet_on_instance_state(self):
        good = """
            class Replica:
                def __init__(self):
                    self._seen = {}

                def handle(self, msg):
                    self._seen[msg.key] = msg
        """
        assert not findings_for(good, self.RULE, path=self.PATH)

    def test_quiet_outside_protocol_modules(self):
        bad = """
            _SEEN = {}

            def handle(msg):
                _SEEN[msg.key] = msg
        """
        assert not findings_for(bad, self.RULE, path="repro/bench/tool.py")

    def test_repo_protocol_modules_are_clean(self):
        report = run_lint([REPO_SRC], rules=default_rules([self.RULE]))
        assert report.ok, report.format_text()


# ---------------------------------------------------------------------------
# Suppressions and the allowlist
# ---------------------------------------------------------------------------
WALLCLOCK_BAD = """
import time

def now():
    return time.time()
"""


class TestSuppressions:
    def test_same_line_suppression_waives(self):
        source = WALLCLOCK_BAD.replace(
            "return time.time()",
            "return time.time()  # repro: allow[no-wallclock] calibration")
        report = lint_source(source, rules=default_rules(["no-wallclock"]))
        assert report.ok
        assert len(report.waived) == 1
        assert report.waived[0].rule == "no-wallclock"

    def test_comment_above_suppresses_next_line(self):
        source = WALLCLOCK_BAD.replace(
            "    return time.time()",
            "    # repro: allow[no-wallclock] calibration\n"
            "    return time.time()")
        report = lint_source(source, rules=default_rules(["no-wallclock"]))
        assert report.ok
        assert len(report.waived) == 1

    def test_wrong_rule_id_does_not_suppress(self):
        source = WALLCLOCK_BAD.replace(
            "return time.time()",
            "return time.time()  # repro: allow[no-silent-except] wrong id")
        report = lint_source(source, rules=default_rules(["no-wallclock"]))
        assert not report.ok

    def test_multiple_rule_ids_in_one_comment(self):
        source = WALLCLOCK_BAD.replace(
            "return time.time()",
            "return time.time()  "
            "# repro: allow[no-silent-except, no-wallclock] both")
        report = lint_source(source, rules=default_rules(["no-wallclock"]))
        assert report.ok


class TestAllowlist:
    def test_entry_waives_matching_finding(self):
        entry = AllowlistEntry(rule="no-wallclock", path="module.py",
                               justification="host-side calibration")
        report = lint_source(WALLCLOCK_BAD, path="module.py",
                             rules=default_rules(["no-wallclock"]),
                             allowlist=[entry])
        assert report.ok
        assert len(report.waived) == 1

    def test_entry_matches_by_symbol(self):
        entry = AllowlistEntry(rule="no-wallclock", path="module.py",
                               symbol="now", justification="calibration")
        report = lint_source(WALLCLOCK_BAD, path="module.py",
                             rules=default_rules(["no-wallclock"]),
                             allowlist=[entry])
        assert report.ok

    def test_symbol_mismatch_does_not_waive(self):
        entry = AllowlistEntry(rule="no-wallclock", path="module.py",
                               symbol="other_function",
                               justification="calibration")
        report = lint_source(WALLCLOCK_BAD, path="module.py",
                             rules=default_rules(["no-wallclock"]),
                             allowlist=[entry])
        assert not report.ok

    def test_path_mismatch_does_not_waive(self):
        entry = AllowlistEntry(rule="no-wallclock", path="other.py",
                               justification="calibration")
        report = lint_source(WALLCLOCK_BAD, path="module.py",
                             rules=default_rules(["no-wallclock"]),
                             allowlist=[entry])
        assert not report.ok

    def test_empty_justification_is_a_configuration_error(self):
        entry = AllowlistEntry(rule="no-wallclock", path="module.py",
                               justification="   ")
        with pytest.raises(ConfigurationError):
            lint_source(WALLCLOCK_BAD, path="module.py",
                        rules=default_rules(["no-wallclock"]),
                        allowlist=[entry])

    def test_committed_allowlist_entries_are_all_justified(self):
        from repro.lint import ALLOWLIST

        assert all(entry.justification.strip() for entry in ALLOWLIST)


# ---------------------------------------------------------------------------
# Engine behaviour: reports, JSON schema, CLI
# ---------------------------------------------------------------------------
class TestEngine:
    def test_rule_catalogue_has_at_least_six_rules(self):
        assert len(rule_ids()) >= 6
        assert len(set(rule_ids())) == len(rule_ids())

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ConfigurationError):
            default_rules(["not-a-rule"])

    def test_syntax_error_becomes_parse_error_finding(self):
        report = lint_source("def broken(:\n")
        assert not report.ok
        assert report.findings[0].rule == "parse-error"

    def test_findings_are_sorted_and_formatted(self):
        source = """
import time

def a():
    return time.time()

def b():
    return time.monotonic()
"""
        report = lint_source(source, path="mod.py",
                             rules=default_rules(["no-wallclock"]))
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)
        assert report.findings[0].format().startswith("mod.py:")

    def test_json_schema(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(WALLCLOCK_BAD)
        report = run_lint([str(bad)])
        payload = report.to_dict()
        assert payload["version"] == 2
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert set(payload["rules"]) == set(rule_ids())
        finding = payload["findings"][0]
        assert set(finding) == {"rule", "path", "line", "col", "message",
                                "symbol"}
        assert payload["counts"]["findings"] == len(payload["findings"])
        assert payload["counts"]["waived"] == len(payload["waived"])
        assert payload["counts"]["by_rule"]["no-wallclock"] == 1
        assert json.loads(json.dumps(payload)) == payload

    def test_json_schema_round_trips(self, tmp_path):
        from repro.lint import LintReport

        bad = tmp_path / "bad.py"
        bad.write_text(WALLCLOCK_BAD)
        report = run_lint([str(bad)])
        payload = json.loads(json.dumps(report.to_dict()))
        rebuilt = LintReport.from_dict(payload)
        assert rebuilt.to_dict() == report.to_dict()

    def test_from_dict_accepts_v1_documents(self):
        from repro.lint import LintReport

        v1 = {
            "version": 1,
            "ok": False,
            "files_checked": 1,
            "rules": ["no-wallclock"],
            "findings": [{"rule": "no-wallclock", "path": "m.py",
                          "line": 4, "col": 11,
                          "message": "wall clock", "symbol": "now"}],
            "waived": [],
        }
        rebuilt = LintReport.from_dict(v1)
        assert not rebuilt.ok
        assert rebuilt.findings[0].rule == "no-wallclock"
        # Re-serializing upgrades to v2 with derived counts.
        assert rebuilt.to_dict()["version"] == 2
        assert rebuilt.to_dict()["counts"]["findings"] == 1

    def test_from_dict_rejects_unknown_version(self):
        from repro.lint import LintReport

        with pytest.raises(ConfigurationError):
            LintReport.from_dict({"version": 3})

    def test_missing_target_raises(self):
        with pytest.raises(ConfigurationError):
            run_lint(["no/such/path.py"])


class TestCli:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("def f(sim):\n    return sim.now\n")
        assert cli_main(["lint", str(good)]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_lint_bad_file_exits_one_with_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(WALLCLOCK_BAD)
        assert cli_main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "no-wallclock" in out

    def test_lint_json_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(WALLCLOCK_BAD)
        assert cli_main(["lint", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["findings"][0]["rule"] == "no-wallclock"

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out

    def test_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(WALLCLOCK_BAD)
        assert cli_main(["lint", str(bad), "--rule",
                         "no-silent-except"]) == 0

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path), "--rule", "bogus"]) == 2


# ---------------------------------------------------------------------------
# The contract this PR ships: the repository's own tree lints clean.
# ---------------------------------------------------------------------------
def test_repro_tree_lints_clean():
    report = run_lint([REPO_SRC])
    assert report.ok, "\n" + report.format_text()
    assert report.files_checked > 40
