"""Tests for the stable public API surface (`repro.api`)."""

from __future__ import annotations

import json

import pytest

import repro
import repro.api


class TestSurface:
    def test_api_all_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name, None) is not None, name

    def test_package_reexports_stable_api(self):
        for name in repro.api.__all__:
            assert name in repro.__all__, name
            assert getattr(repro, name) is getattr(repro.api, name), name

    def test_package_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_entry_points_present(self):
        for name in ("ExperimentConfig", "run_experiment",
                     "ExperimentResult", "FaultTimeline",
                     "apply_scenario", "deployment_digest"):
            assert name in repro.api.__all__


class TestResultSerialization:
    def _result(self):
        return repro.ExperimentResult(
            protocol="geobft", num_clusters=2, replicas_per_cluster=4,
            batch_size=5, throughput_txn_s=100.0, avg_latency_s=0.05,
            p50_latency_s=0.04, completed_txns=500, duration=5.0,
            local_messages=10, global_messages=4, local_bytes=1000,
            global_bytes=400, safety_ok=True,
        )

    def test_to_dict_round_trip(self):
        result = self._result()
        data = result.to_dict()
        assert data["protocol"] == "geobft"
        assert data["liveness_ok"] is True
        assert data["schema"] == "repro-result/1"
        assert repro.ExperimentResult.from_dict(data) == result

    def test_from_dict_rejects_unknown_schema(self):
        data = self._result().to_dict()
        data["schema"] = "repro-result/999"
        with pytest.raises(Exception):
            repro.ExperimentResult.from_dict(data)

    def test_to_json_is_stable(self):
        result = self._result()
        data = json.loads(result.to_json())
        assert data == result.to_dict()
        # sorted keys, so the JSON form itself is deterministic
        assert result.to_json() == result.to_json()
        assert list(data) == sorted(data)

    def test_describe_flags_stalled_liveness(self):
        import dataclasses

        stalled = dataclasses.replace(self._result(), liveness_ok=False)
        assert "liveness=STALLED" in stalled.describe()
        assert "liveness=STALLED" not in self._result().describe()


class TestEndToEnd:
    def test_run_experiment_via_public_api(self):
        result = repro.run_experiment(repro.ExperimentConfig(
            protocol="geobft", num_clusters=2, replicas_per_cluster=4,
            batch_size=5, clients_per_cluster=1, duration=1.5,
            warmup=0.3, record_count=100, fast_crypto=True,
        ))
        assert result.safety_ok and result.liveness_ok
        assert result.completed_txns > 0

    def test_invariant_report_without_timeline(self):
        deployment = repro.Deployment(repro.ExperimentConfig(
            protocol="pbft", num_clusters=2, replicas_per_cluster=4,
            batch_size=5, clients_per_cluster=1, duration=1.5,
            warmup=0.3, record_count=100, fast_crypto=True,
        ))
        deployment.run()
        report = deployment.invariants
        assert report is not None
        assert report.ok
        assert report.liveness_failures == ()
        assert report.byzantine_excluded == ()
        assert "safety" in report.describe()
