"""Tests for canonical encoding and SHA256 digests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.digests import DIGEST_SIZE, digest, digest_of, encode_canonical
from repro.errors import CryptoError

# Strategy for canonically encodable payload trees.
primitives = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63),
    st.text(max_size=30),
    st.binary(max_size=30),
)
payloads = st.recursive(
    primitives,
    lambda children: st.one_of(
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


class TestCanonicalEncoding:
    def test_dict_order_independent(self):
        assert (encode_canonical({"a": 1, "b": 2})
                == encode_canonical({"b": 2, "a": 1}))

    def test_type_tags_distinguish_int_and_str(self):
        assert encode_canonical(1) != encode_canonical("1")

    def test_nested_structures(self):
        value = {"k": (1, "two", b"three", None, True)}
        assert encode_canonical(value) == encode_canonical(dict(value))

    def test_list_and_tuple_encode_identically(self):
        assert encode_canonical([1, 2]) == encode_canonical((1, 2))

    def test_bool_and_int_distinguished(self):
        assert encode_canonical(True) != encode_canonical(1)
        assert encode_canonical(False) != encode_canonical(0)

    def test_length_prefix_prevents_ambiguity(self):
        assert encode_canonical(("ab", "c")) != encode_canonical(("a", "bc"))

    def test_unsupported_type_raises(self):
        with pytest.raises(CryptoError):
            encode_canonical(object())

    def test_object_with_payload_method(self):
        class Msg:
            def payload(self):
                return ("m", 1)

        assert encode_canonical(Msg()) == encode_canonical(("m", 1))

    @given(payloads)
    def test_encoding_is_deterministic(self, value):
        assert encode_canonical(value) == encode_canonical(value)


class TestDigests:
    def test_digest_size(self):
        assert len(digest(b"abc")) == DIGEST_SIZE
        assert len(digest_of(("x", 1))) == DIGEST_SIZE

    def test_digest_of_equal_payloads_match(self):
        assert digest_of({"a": 1, "b": 2}) == digest_of({"b": 2, "a": 1})

    def test_digest_of_different_payloads_differ(self):
        assert digest_of((1, 2)) != digest_of((2, 1))

    def test_digest_matches_hashlib(self):
        import hashlib
        assert digest(b"hello") == hashlib.sha256(b"hello").digest()

    @given(payloads, payloads)
    def test_digest_agrees_with_canonical_encoding(self, a, b):
        """Digests collide exactly when canonical encodings collide
        (i.e. only via SHA256 itself)."""
        same_encoding = encode_canonical(a) == encode_canonical(b)
        same_digest = digest_of(a) == digest_of(b)
        assert same_encoding == same_digest

    @given(payloads, payloads)
    def test_encoding_injective_on_distinct_structures(self, a, b):
        """Structurally distinct payloads encode differently.

        ``bool`` vs ``int`` equality (True == 1) is the one place where
        Python equality is coarser than structure, so compare via repr
        of the type-annotated trees.
        """
        def norm(v):
            if isinstance(v, bool):
                return ("bool", v)
            if isinstance(v, (tuple, list)):
                return ("seq", tuple(norm(x) for x in v))
            if isinstance(v, dict):
                return ("map", tuple(sorted(
                    (k, norm(x)) for k, x in v.items())))
            return (type(v).__name__, v)

        if norm(a) != norm(b):
            assert encode_canonical(a) != encode_canonical(b)
