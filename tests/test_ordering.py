"""Tests for the GeoBFT ordering buffer (§2.4)."""

import pytest

from repro.core.ordering import OrderingBuffer
from repro.errors import ProtocolError


def collector():
    executed = []

    def execute(round_id, ordered):
        executed.append((round_id, [c for c, _r, _cert in ordered]))

    return executed, execute


class TestOrderingBuffer:
    def test_round_releases_when_all_clusters_present(self):
        executed, execute = collector()
        buf = OrderingBuffer([1, 2, 3], execute)
        buf.add_share(1, 2, "r2", "c2")
        buf.add_share(1, 1, "r1", "c1")
        assert executed == []
        buf.add_share(1, 3, "r3", "c3")
        assert executed == [(1, [1, 2, 3])]

    def test_execution_in_cluster_id_order(self):
        executed, execute = collector()
        buf = OrderingBuffer([3, 1, 2], execute)
        for c in (2, 3, 1):
            buf.add_share(1, c, f"r{c}", f"c{c}")
        assert executed == [(1, [1, 2, 3])]

    def test_rounds_release_strictly_in_order(self):
        executed, execute = collector()
        buf = OrderingBuffer([1, 2], execute)
        buf.add_share(2, 1, "a", "c")
        buf.add_share(2, 2, "b", "c")
        assert executed == []  # round 1 incomplete
        buf.add_share(1, 1, "x", "c")
        buf.add_share(1, 2, "y", "c")
        assert [r for r, _ in executed] == [1, 2]

    def test_duplicate_share_ignored(self):
        executed, execute = collector()
        buf = OrderingBuffer([1, 2], execute)
        assert buf.add_share(1, 1, "a", "c")
        assert not buf.add_share(1, 1, "a-dup", "c-dup")
        buf.add_share(1, 2, "b", "c")
        assert executed == [(1, [1, 2])]

    def test_share_for_executed_round_ignored(self):
        executed, execute = collector()
        buf = OrderingBuffer([1], execute)
        buf.add_share(1, 1, "a", "c")
        assert not buf.add_share(1, 1, "late", "c")
        assert buf.executed_rounds() == 1

    def test_unknown_cluster_rejected(self):
        _executed, execute = collector()
        buf = OrderingBuffer([1, 2], execute)
        with pytest.raises(ProtocolError):
            buf.add_share(1, 9, "a", "c")

    def test_empty_cluster_set_rejected(self):
        with pytest.raises(ProtocolError):
            OrderingBuffer([], lambda *a: None)

    def test_missing_clusters(self):
        _executed, execute = collector()
        buf = OrderingBuffer([1, 2, 3], execute)
        buf.add_share(1, 2, "a", "c")
        assert buf.missing_clusters(1) == (1, 3)
        assert buf.missing_clusters(5) == (1, 2, 3)

    def test_missing_clusters_empty_for_executed_round(self):
        _executed, execute = collector()
        buf = OrderingBuffer([1], execute)
        buf.add_share(1, 1, "a", "c")
        assert buf.missing_clusters(1) == ()

    def test_has_and_get_share(self):
        _executed, execute = collector()
        buf = OrderingBuffer([1, 2], execute)
        buf.add_share(3, 1, "req", "cert")
        assert buf.has_share(3, 1)
        assert not buf.has_share(3, 2)
        assert buf.get_share(3, 1) == ("req", "cert")
        assert buf.get_share(3, 2) is None

    def test_has_share_true_for_executed_rounds(self):
        _executed, execute = collector()
        buf = OrderingBuffer([1], execute)
        buf.add_share(1, 1, "a", "c")
        assert buf.has_share(1, 1)

    def test_next_round_advances(self):
        _executed, execute = collector()
        buf = OrderingBuffer([1], execute)
        assert buf.next_round == 1
        buf.add_share(1, 1, "a", "c")
        buf.add_share(2, 1, "b", "c")
        assert buf.next_round == 3
        assert buf.executed_rounds() == 2

    def test_many_rounds_out_of_order(self):
        executed, execute = collector()
        buf = OrderingBuffer([1, 2], execute)
        import random
        rng = random.Random(4)
        shares = [(r, c) for r in range(1, 21) for c in (1, 2)]
        rng.shuffle(shares)
        for r, c in shares:
            buf.add_share(r, c, f"req{r}.{c}", "cert")
        assert [r for r, _ in executed] == list(range(1, 21))
